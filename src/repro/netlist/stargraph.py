"""Design-to-graph conversion for the GCN runtime predictor.

Section III-B of the paper ("Processing Input Design"):

* For **synthesis**, the model operates on the AIG — a DAG whose edge
  directions are preserved for the GCN.
* For **placement / routing / STA**, the input is a netlist; cells and I/O
  pins become graph nodes and each net becomes a set of directed edges using
  the *star model* — one edge from the driving cell (or input pin) towards
  each sink (or output pin).

Both converters return a :class:`GraphSample`: an edge list plus a node
feature matrix, directly consumable by :mod:`repro.gnn`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from .aig import AIG, lit_is_complemented, lit_node
from .netlist import PORT, Netlist

__all__ = [
    "GraphSample",
    "aig_to_graph",
    "netlist_to_star_graph",
    "netlist_to_clique_graph",
    "AIG_FEATURE_DIM",
    "NETLIST_FEATURE_DIM",
]

#: Number of node features produced by :func:`aig_to_graph`.
AIG_FEATURE_DIM = 8
#: Number of node features produced by :func:`netlist_to_star_graph`.
NETLIST_FEATURE_DIM = 12


@dataclass
class GraphSample:
    """A graph ready for GCN consumption.

    Attributes
    ----------
    name:
        Design name the graph came from.
    num_nodes:
        Node count.
    edges:
        ``(E, 2)`` int array of directed ``src -> dst`` pairs.
    features:
        ``(N, F)`` float array of node features.
    meta:
        Free-form metadata (e.g. instance counts) used by reports.
    """

    name: str
    num_nodes: int
    edges: np.ndarray
    features: np.ndarray
    meta: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.edges = np.asarray(self.edges, dtype=np.int64).reshape(-1, 2)
        self.features = np.asarray(self.features, dtype=np.float64)
        if self.features.shape[0] != self.num_nodes:
            raise ValueError(
                f"feature rows {self.features.shape[0]} != num_nodes {self.num_nodes}"
            )
        if self.edges.size and int(self.edges.max()) >= self.num_nodes:
            raise ValueError("edge endpoint out of range")

    @property
    def num_edges(self) -> int:
        return int(self.edges.shape[0])

    @property
    def feature_dim(self) -> int:
        return int(self.features.shape[1])


def aig_to_graph(aig: AIG) -> GraphSample:
    """Convert an AIG to a directed graph with structural node features.

    Node ``i`` of the sample is AIG node ``i`` (the constant node included,
    so indices line up).  Features per node:

    ``[is_const, is_pi, is_and, fanout/16, level/depth, inverted_fanins/2,
    is_po_driver, 1]``
    """
    n = aig.size
    fanout = aig.fanout_counts()
    level = aig.levels()
    depth = max(1, aig.depth())
    po_drivers = {lit_node(out) for out in aig.outputs}
    features = np.zeros((n, AIG_FEATURE_DIM), dtype=np.float64)
    edges: List[Tuple[int, int]] = []
    for node in range(n):
        is_input = aig.is_input(node)
        is_and = aig.is_and(node)
        inverted = 0
        if is_and:
            a, b = aig.fanins(node)
            edges.append((lit_node(a), node))
            edges.append((lit_node(b), node))
            inverted = int(lit_is_complemented(a)) + int(lit_is_complemented(b))
        features[node] = [
            1.0 if node == 0 else 0.0,
            1.0 if is_input else 0.0,
            1.0 if is_and else 0.0,
            fanout[node] / 16.0,
            level[node] / depth,
            inverted / 2.0,
            1.0 if node in po_drivers else 0.0,
            1.0,
        ]
    return GraphSample(
        name=aig.name,
        num_nodes=n,
        edges=np.asarray(edges, dtype=np.int64).reshape(-1, 2),
        features=features,
        meta={
            "num_inputs": float(aig.num_inputs),
            "num_outputs": float(aig.num_outputs),
            "num_ands": float(aig.num_ands),
            "depth": float(depth),
        },
    )


def _netlist_node_index(netlist: Netlist) -> Dict[Tuple[str, str], int]:
    """Assign node ids: input ports, then instances, then output ports."""
    index: Dict[Tuple[str, str], int] = {}
    for name in netlist.input_ports:
        index[("in", name)] = len(index)
    for name in netlist.instances:
        index[("cell", name)] = len(index)
    for name in netlist.output_ports:
        index[("out", name)] = len(index)
    return index


def _netlist_features(netlist: Netlist, index: Dict[Tuple[str, str], int]) -> np.ndarray:
    levels = netlist.levels()
    depth = max(1, netlist.depth())
    features = np.zeros((len(index), NETLIST_FEATURE_DIM), dtype=np.float64)
    for (kind, name), node_id in index.items():
        if kind == "in":
            fanout = netlist.nets[name].fanout
            features[node_id] = [1, 0, 0, 0, 0, 0, fanout / 16.0, 0, 0, 0, 0, 1]
        elif kind == "out":
            features[node_id] = [0, 1, 0, 0, 0, 0, 0, 1.0, 0, 0, 0, 1]
        else:
            inst = netlist.instances[name]
            out_net = netlist.nets[inst.output_net]
            cell = inst.cell
            is_invlike = 1.0 if cell.num_inputs == 1 else 0.0
            is_xorlike = 1.0 if "XOR" in cell.name or "XNOR" in cell.name else 0.0
            is_muxlike = 1.0 if "MUX" in cell.name else 0.0
            features[node_id] = [
                0,
                0,
                1,
                cell.area / 2.0,
                cell.num_inputs / 4.0,
                cell.intrinsic_delay / 30.0,
                out_net.fanout / 16.0,
                levels[name] / depth,
                is_invlike,
                is_xorlike,
                is_muxlike,
                1,
            ]
    return features


def _net_edges(
    netlist: Netlist, index: Dict[Tuple[str, str], int], star: bool
) -> np.ndarray:
    """Build directed edges from nets.

    With ``star=True`` (the paper's model) each net contributes one edge from
    its driver node to each sink node.  With ``star=False`` a clique model is
    used instead (all endpoint pairs) — kept for the ablation study.
    """
    edges: List[Tuple[int, int]] = []
    for net in netlist.nets.values():
        if net.driver is None:
            continue
        owner, _pin = net.driver
        src = index[("in", net.driver[1])] if owner == PORT else index[("cell", owner)]
        dsts = []
        for sink_owner, sink_pin in net.sinks:
            if sink_owner == PORT:
                dsts.append(index[("out", sink_pin)])
            else:
                dsts.append(index[("cell", sink_owner)])
        if star:
            edges.extend((src, d) for d in dsts)
        else:
            endpoints = [src] + dsts
            for i, u in enumerate(endpoints):
                for v in endpoints[i + 1 :]:
                    edges.append((u, v))
                    edges.append((v, u))
    return np.asarray(edges, dtype=np.int64).reshape(-1, 2)


def netlist_to_star_graph(netlist: Netlist) -> GraphSample:
    """Convert a netlist to the paper's star-model directed graph."""
    index = _netlist_node_index(netlist)
    return GraphSample(
        name=netlist.name,
        num_nodes=len(index),
        edges=_net_edges(netlist, index, star=True),
        features=_netlist_features(netlist, index),
        meta={
            "num_instances": float(netlist.num_instances),
            "num_nets": float(netlist.num_nets),
            "total_area": float(netlist.total_area()),
            "depth": float(netlist.depth()),
        },
    )


def netlist_to_clique_graph(netlist: Netlist) -> GraphSample:
    """Clique-model alternative to the star conversion (ablation only)."""
    index = _netlist_node_index(netlist)
    return GraphSample(
        name=netlist.name,
        num_nodes=len(index),
        edges=_net_edges(netlist, index, star=False),
        features=_netlist_features(netlist, index),
        meta={
            "num_instances": float(netlist.num_instances),
            "num_nets": float(netlist.num_nets),
        },
    )
