"""Gate-level netlist.

A :class:`Netlist` is the output of technology mapping and the input to
placement, routing and STA — and, via the star-model conversion in
:mod:`repro.netlist.stargraph`, to the GCN runtime predictor.

The structure is deliberately explicit: named instances of library cells,
named nets, and port lists.  Every net has exactly one driver (an input port
or an instance output pin) and any number of sinks (instance input pins or
output ports).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from .cells import Cell, Library

__all__ = ["Instance", "Net", "Netlist", "NetlistStats", "NetlistError"]


class NetlistError(ValueError):
    """Raised when a netlist is malformed (floating nets, bad pins, ...)."""


@dataclass
class Instance:
    """A placed-or-unplaced occurrence of a library cell.

    ``pin_nets`` maps every pin name of the cell (inputs and output) to the
    name of the net attached to it.
    """

    name: str
    cell: Cell
    pin_nets: Dict[str, str]

    @property
    def input_nets(self) -> List[str]:
        """Nets attached to the cell's input pins, in pin order."""
        return [self.pin_nets[pin] for pin in self.cell.inputs]

    @property
    def output_net(self) -> str:
        """Net driven by the cell's output pin."""
        return self.pin_nets[self.cell.output]


@dataclass
class Net:
    """A signal with one driver and a list of sinks.

    The driver is ``("__port__", port_name)`` for primary inputs, otherwise
    ``(instance_name, pin_name)``.  Sinks use the same encoding with
    ``("__port__", port_name)`` for primary outputs.
    """

    name: str
    driver: Optional[Tuple[str, str]] = None
    sinks: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def fanout(self) -> int:
        return len(self.sinks)


@dataclass(frozen=True)
class NetlistStats:
    """Structural summary used by work models and reports."""

    num_instances: int
    num_nets: int
    num_inputs: int
    num_outputs: int
    total_area: float
    max_fanout: int
    depth: int


PORT = "__port__"


class Netlist:
    """A flat, combinational gate-level netlist over a :class:`Library`."""

    def __init__(self, name: str, library: Library):
        self.name = name
        self.library = library
        self.input_ports: List[str] = []
        self.output_ports: List[str] = []
        # Output port name -> net it observes.
        self.output_port_nets: Dict[str, str] = {}
        self.instances: Dict[str, Instance] = {}
        self.nets: Dict[str, Net] = {}
        self._topo_cache: Optional[List[str]] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_input_port(self, name: str) -> str:
        """Declare a primary input; creates the net it drives."""
        if name in self.nets:
            raise NetlistError(f"net {name!r} already exists")
        self.input_ports.append(name)
        net = self._get_or_create_net(name)
        net.driver = (PORT, name)
        self._topo_cache = None
        return name

    def add_output_port(self, name: str, net_name: str) -> str:
        """Declare a primary output observing ``net_name``."""
        net = self._get_or_create_net(net_name)
        net.sinks.append((PORT, name))
        self.output_ports.append(name)
        self.output_port_nets[name] = net_name
        self._topo_cache = None
        return name

    def add_instance(self, name: str, cell_name: str, pin_nets: Dict[str, str]) -> Instance:
        """Instantiate a library cell and wire its pins to nets by name."""
        if name in self.instances:
            raise NetlistError(f"instance {name!r} already exists")
        cell = self.library.cell(cell_name)
        expected = set(cell.inputs) | {cell.output}
        if set(pin_nets) != expected:
            raise NetlistError(
                f"instance {name!r}: pins {sorted(pin_nets)} do not match "
                f"cell {cell_name!r} pins {sorted(expected)}"
            )
        inst = Instance(name=name, cell=cell, pin_nets=dict(pin_nets))
        self.instances[name] = inst
        for pin in cell.inputs:
            self._get_or_create_net(pin_nets[pin]).sinks.append((name, pin))
        out_net = self._get_or_create_net(pin_nets[cell.output])
        if out_net.driver is not None:
            raise NetlistError(
                f"net {out_net.name!r} already driven by {out_net.driver}; "
                f"cannot also drive from {name!r}"
            )
        out_net.driver = (name, cell.output)
        self._topo_cache = None
        return inst

    def _get_or_create_net(self, name: str) -> Net:
        net = self.nets.get(name)
        if net is None:
            net = Net(name=name)
            self.nets[name] = net
        return net

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def num_instances(self) -> int:
        return len(self.instances)

    @property
    def num_nets(self) -> int:
        return len(self.nets)

    def total_area(self) -> float:
        """Sum of instance areas in square micrometres."""
        return sum(inst.cell.area for inst in self.instances.values())

    def driver_instance(self, net_name: str) -> Optional[str]:
        """Name of the instance driving a net, or ``None`` for input ports."""
        net = self.nets[net_name]
        if net.driver is None:
            raise NetlistError(f"net {net_name!r} has no driver")
        owner, _pin = net.driver
        return None if owner == PORT else owner

    def validate(self) -> None:
        """Check structural invariants; raise :class:`NetlistError` if broken."""
        for net in self.nets.values():
            if net.driver is None:
                raise NetlistError(f"net {net.name!r} is undriven")
        for name in self.output_ports:
            if self.output_port_nets[name] not in self.nets:
                raise NetlistError(f"output port {name!r} observes unknown net")
        # Topological order existing implies acyclicity.
        self.topological_order()

    def topological_order(self) -> List[str]:
        """Instance names in topological (driver-before-sink) order."""
        if self._topo_cache is not None:
            return list(self._topo_cache)
        indegree: Dict[str, int] = {}
        dependents: Dict[str, List[str]] = {}
        for name, inst in self.instances.items():
            count = 0
            for net_name in inst.input_nets:
                driver = self.driver_instance(net_name)
                if driver is not None:
                    count += 1
                    dependents.setdefault(driver, []).append(name)
            indegree[name] = count
        ready = sorted(n for n, d in indegree.items() if d == 0)
        order: List[str] = []
        while ready:
            name = ready.pop()
            order.append(name)
            for dep in dependents.get(name, ()):  # noqa: B905
                indegree[dep] -= 1
                if indegree[dep] == 0:
                    ready.append(dep)
        if len(order) != len(self.instances):
            raise NetlistError("netlist contains a combinational cycle")
        self._topo_cache = order
        return list(order)

    def levels(self) -> Dict[str, int]:
        """Logic level per instance (instances fed only by ports are level 1)."""
        level: Dict[str, int] = {}
        for name in self.topological_order():
            inst = self.instances[name]
            best = 0
            for net_name in inst.input_nets:
                driver = self.driver_instance(net_name)
                if driver is not None:
                    best = max(best, level[driver])
            level[name] = best + 1
        return level

    def depth(self) -> int:
        """Longest instance chain from any input to any output."""
        if not self.instances:
            return 0
        return max(self.levels().values())

    def stats(self) -> NetlistStats:
        """Return a structural summary of the design."""
        max_fanout = max((net.fanout for net in self.nets.values()), default=0)
        return NetlistStats(
            num_instances=self.num_instances,
            num_nets=self.num_nets,
            num_inputs=len(self.input_ports),
            num_outputs=len(self.output_ports),
            total_area=self.total_area(),
            max_fanout=max_fanout,
            depth=self.depth(),
        )

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def simulate(self, input_words: Dict[str, int], width: int = 64) -> Dict[str, int]:
        """Bit-parallel simulation compatible with :meth:`repro.netlist.aig.AIG.simulate`.

        Parameters
        ----------
        input_words:
            Map from input port name to a packed word of ``width`` patterns.

        Returns
        -------
        dict
            Map from output port name to its packed word of results.
        """
        missing = set(self.input_ports) - set(input_words)
        if missing:
            raise NetlistError(f"missing stimulus for inputs: {sorted(missing)}")
        mask = (1 << width) - 1
        values: Dict[str, int] = {
            name: input_words[name] & mask for name in self.input_ports
        }
        for inst_name in self.topological_order():
            inst = self.instances[inst_name]
            cell = inst.cell
            out = 0
            # Evaluate the cell truth table bit-parallel: for every minterm
            # with output 1, AND together the matching input polarities.
            in_words = [values[net] for net in inst.input_nets]
            for minterm in range(1 << cell.num_inputs):
                if not (cell.function >> minterm) & 1:
                    continue
                term = mask
                for j, word in enumerate(in_words):
                    term &= word if (minterm >> j) & 1 else (~word & mask)
                    if not term:
                        break
                out |= term
            values[inst.output_net] = out
        return {
            port: values[self.output_port_nets[port]] & mask
            for port in self.output_ports
        }

    def random_simulation_signature(
        self, patterns: int = 64, seed: int = 0
    ) -> List[int]:
        """Per-output random-stimulus signatures, ordered like ``output_ports``.

        Uses the same PRNG convention as the AIG so that a mapped netlist and
        its source AIG produce comparable signatures when the port order
        matches the AIG's input/output order.
        """
        rng = random.Random(seed)
        words = {name: rng.getrandbits(patterns) for name in self.input_ports}
        result = self.simulate(words, width=patterns)
        return [result[p] for p in self.output_ports]

    def fanout_histogram(self) -> Dict[int, int]:
        """Map fanout -> number of nets with that fanout."""
        hist: Dict[int, int] = {}
        for net in self.nets.values():
            hist[net.fanout] = hist.get(net.fanout, 0) + 1
        return hist

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Netlist(name={self.name!r}, instances={self.num_instances}, "
            f"nets={self.num_nets}, in={len(self.input_ports)}, "
            f"out={len(self.output_ports)})"
        )
