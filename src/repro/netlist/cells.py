"""Liberty-lite standard-cell library.

The paper characterizes a commercial flow on a GlobalFoundries 14nm library.
We substitute a small open "liberty-lite" library that carries exactly the
attributes our engines need:

* a boolean *function* per cell (as a truth table) so the technology mapper
  can match AIG cuts onto cells,
* *area* so placement has real footprints,
* pin *capacitances* and a linear *delay model* (intrinsic + slope x load)
  so STA computes genuine arrival times, and
* an ``is_sequential`` marker reserved for future sequential support.

Truth-table convention
----------------------
For a cell with inputs ``(i0, i1, ..., i{n-1})`` (in declared order), bit
``k`` of the truth table is the output value when input ``ij`` equals bit
``j`` of ``k``.  Example: ``AND2`` over ``(A, B)`` has truth table ``0b1000``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Cell",
    "Library",
    "nangate_lite",
    "truth_table_ones",
    "permute_truth_table",
    "negate_truth_table",
]


def truth_table_ones(table: int, num_inputs: int) -> int:
    """Count the minterms of a truth table over ``num_inputs`` variables."""
    mask = (1 << (1 << num_inputs)) - 1
    return bin(table & mask).count("1")


def negate_truth_table(table: int, num_inputs: int) -> int:
    """Complement a truth table over ``num_inputs`` variables."""
    mask = (1 << (1 << num_inputs)) - 1
    return (~table) & mask


def permute_truth_table(table: int, num_inputs: int, perm: Sequence[int]) -> int:
    """Apply an input permutation to a truth table.

    ``perm[j]`` gives the new position of original input ``j``; the returned
    table ``g`` satisfies ``g(x_perm) = f(x)``.
    """
    size = 1 << num_inputs
    out = 0
    for minterm in range(size):
        if not (table >> minterm) & 1:
            continue
        permuted = 0
        for j in range(num_inputs):
            if (minterm >> j) & 1:
                permuted |= 1 << perm[j]
        out |= 1 << permuted
    return out


@dataclass(frozen=True)
class Cell:
    """One standard cell.

    Attributes
    ----------
    name:
        Library cell name, e.g. ``"NAND2_X1"``.
    inputs:
        Ordered input pin names.
    output:
        Output pin name.
    function:
        Truth table over the declared input order (see module docstring).
    area:
        Cell area in square micrometres.
    input_cap:
        Capacitance of each input pin, in femtofarads.
    intrinsic_delay:
        Load-independent delay component, in picoseconds.
    load_slope:
        Delay added per femtofarad of output load, in ps/fF.
    leakage:
        Leakage power in nanowatts (used only for reporting).
    """

    name: str
    inputs: Tuple[str, ...]
    output: str
    function: int
    area: float
    input_cap: float
    intrinsic_delay: float
    load_slope: float
    leakage: float = 1.0

    @property
    def num_inputs(self) -> int:
        return len(self.inputs)

    def evaluate(self, values: Sequence[bool]) -> bool:
        """Evaluate the cell function on concrete input values."""
        if len(values) != self.num_inputs:
            raise ValueError(
                f"{self.name} expects {self.num_inputs} inputs, got {len(values)}"
            )
        index = 0
        for j, v in enumerate(values):
            if v:
                index |= 1 << j
        return bool((self.function >> index) & 1)

    def delay(self, load_fF: float) -> float:
        """Pin-to-pin delay in picoseconds under a given output load."""
        return self.intrinsic_delay + self.load_slope * max(load_fF, 0.0)


class Library:
    """A collection of cells with function-matching support for mapping.

    Parameters
    ----------
    name:
        Library name.
    cells:
        The cells in the library.
    wire_cap_per_um:
        Estimated wire capacitance per micron, used by STA to turn placement
        wirelength into load (fF/um).
    """

    def __init__(self, name: str, cells: Iterable[Cell], wire_cap_per_um: float = 0.2):
        self.name = name
        self.wire_cap_per_um = wire_cap_per_um
        self._cells: Dict[str, Cell] = {}
        for cell in cells:
            if cell.name in self._cells:
                raise ValueError(f"duplicate cell name {cell.name!r}")
            self._cells[cell.name] = cell
        # (num_inputs, truth_table) -> list of (cell, perm, output_inverted)
        self._match_index: Dict[Tuple[int, int], List[Tuple[Cell, Tuple[int, ...], bool]]] = {}
        self._build_match_index()

    def _build_match_index(self) -> None:
        for cell in self._cells.values():
            n = cell.num_inputs
            if n > 4:
                continue
            for perm in itertools.permutations(range(n)):
                table = permute_truth_table(cell.function, n, perm)
                for inverted in (False, True):
                    key_table = negate_truth_table(table, n) if inverted else table
                    key = (n, key_table)
                    entry = (cell, perm, inverted)
                    bucket = self._match_index.setdefault(key, [])
                    if entry not in bucket:
                        bucket.append(entry)

    # ------------------------------------------------------------------
    def cell(self, name: str) -> Cell:
        """Look up a cell by name, raising ``KeyError`` if absent."""
        return self._cells[name]

    def __contains__(self, name: str) -> bool:
        return name in self._cells

    def __iter__(self):
        return iter(self._cells.values())

    def __len__(self) -> int:
        return len(self._cells)

    @property
    def cell_names(self) -> List[str]:
        return sorted(self._cells)

    def matches(
        self, function: int, num_inputs: int
    ) -> List[Tuple[Cell, Tuple[int, ...], bool]]:
        """Find cells implementing a truth table.

        Returns a list of ``(cell, perm, output_inverted)``: connecting cell
        input pin ``j`` to the function's variable ``perm[j]`` implements
        ``function`` (its complement when ``output_inverted``).
        """
        return list(self._match_index.get((num_inputs, function), []))

    def best_match(
        self, function: int, num_inputs: int
    ) -> Optional[Tuple[Cell, Tuple[int, ...], bool]]:
        """Return the smallest-area match for a truth table, if any.

        Non-inverted matches win ties so the mapper does not add needless
        output inversions.
        """
        candidates = self.matches(function, num_inputs)
        if not candidates:
            return None
        return min(candidates, key=lambda m: (m[0].area, m[2], m[0].name))


def _cell(
    name: str,
    inputs: Sequence[str],
    function: int,
    area: float,
    cap: float,
    intrinsic: float,
    slope: float,
    leakage: float = 1.0,
) -> Cell:
    return Cell(
        name=name,
        inputs=tuple(inputs),
        output="Y",
        function=function,
        area=area,
        input_cap=cap,
        intrinsic_delay=intrinsic,
        load_slope=slope,
        leakage=leakage,
    )


def nangate_lite() -> Library:
    """Build the default library used across the reproduction.

    Areas and delays are loosely modelled on a 15nm open cell library; only
    their *relative* magnitudes matter for the experiments.
    """
    # Truth tables follow the module-level bit convention.
    tt_inv = 0b01
    tt_buf = 0b10
    tt_and2 = 0b1000
    tt_nand2 = 0b0111
    tt_or2 = 0b1110
    tt_nor2 = 0b0001
    tt_xor2 = 0b0110
    tt_xnor2 = 0b1001
    # 3-input tables over (A, B, C): index bit0=A, bit1=B, bit2=C.
    tt_nand3 = negate_truth_table(0b10000000, 3)
    tt_nor3 = 0b00000001
    tt_and3 = 0b10000000
    tt_or3 = 0b11111110
    tt_maj3 = 0b11101000
    # MUX2 over (A, B, S): Y = S ? B : A.
    tt_mux2 = 0
    for a in range(2):
        for b in range(2):
            for s in range(2):
                idx = a | (b << 1) | (s << 2)
                y = b if s else a
                tt_mux2 |= y << idx
    # AOI21 over (A, B, C): Y = ~((A & B) | C)
    tt_aoi21 = 0
    for a in range(2):
        for b in range(2):
            for c in range(2):
                idx = a | (b << 1) | (c << 2)
                y = 0 if ((a and b) or c) else 1
                tt_aoi21 |= y << idx
    # OAI21 over (A, B, C): Y = ~((A | B) & C)
    tt_oai21 = 0
    for a in range(2):
        for b in range(2):
            for c in range(2):
                idx = a | (b << 1) | (c << 2)
                y = 0 if ((a or b) and c) else 1
                tt_oai21 |= y << idx
    # AOI22 over (A, B, C, D): Y = ~((A & B) | (C & D))
    tt_aoi22 = 0
    tt_oai22 = 0
    for a in range(2):
        for b in range(2):
            for c in range(2):
                for d in range(2):
                    idx = a | (b << 1) | (c << 2) | (d << 3)
                    tt_aoi22 |= (0 if ((a and b) or (c and d)) else 1) << idx
                    tt_oai22 |= (0 if ((a or b) and (c or d)) else 1) << idx
    # XOR3 over (A, B, C) — the sum function of a full adder.
    tt_xor3 = 0
    for a in range(2):
        for b in range(2):
            for c in range(2):
                idx = a | (b << 1) | (c << 2)
                tt_xor3 |= ((a ^ b ^ c) & 1) << idx

    cells = [
        _cell("INV_X1", ["A"], tt_inv, area=0.5, cap=1.0, intrinsic=8.0, slope=3.0),
        _cell("BUF_X1", ["A"], tt_buf, area=0.7, cap=1.0, intrinsic=14.0, slope=2.0),
        _cell("NAND2_X1", ["A", "B"], tt_nand2, area=0.8, cap=1.1, intrinsic=10.0, slope=3.2),
        _cell("NOR2_X1", ["A", "B"], tt_nor2, area=0.8, cap=1.1, intrinsic=12.0, slope=3.6),
        _cell("AND2_X1", ["A", "B"], tt_and2, area=1.0, cap=1.1, intrinsic=16.0, slope=2.8),
        _cell("OR2_X1", ["A", "B"], tt_or2, area=1.0, cap=1.1, intrinsic=17.0, slope=2.9),
        _cell("XOR2_X1", ["A", "B"], tt_xor2, area=1.6, cap=1.5, intrinsic=22.0, slope=3.4),
        _cell("XNOR2_X1", ["A", "B"], tt_xnor2, area=1.6, cap=1.5, intrinsic=22.0, slope=3.4),
        _cell("NAND3_X1", ["A", "B", "C"], tt_nand3, area=1.1, cap=1.2, intrinsic=14.0, slope=3.5),
        _cell("NOR3_X1", ["A", "B", "C"], tt_nor3, area=1.1, cap=1.2, intrinsic=16.0, slope=4.0),
        _cell("AND3_X1", ["A", "B", "C"], tt_and3, area=1.3, cap=1.2, intrinsic=19.0, slope=3.0),
        _cell("OR3_X1", ["A", "B", "C"], tt_or3, area=1.3, cap=1.2, intrinsic=20.0, slope=3.1),
        _cell("MAJ3_X1", ["A", "B", "C"], tt_maj3, area=2.0, cap=1.4, intrinsic=24.0, slope=3.3),
        _cell("XOR3_X1", ["A", "B", "C"], tt_xor3, area=2.4, cap=1.6, intrinsic=28.0, slope=3.6),
        _cell("MUX2_X1", ["A", "B", "S"], tt_mux2, area=1.8, cap=1.3, intrinsic=20.0, slope=3.2),
        _cell("AOI21_X1", ["A", "B", "C"], tt_aoi21, area=1.2, cap=1.2, intrinsic=13.0, slope=3.8),
        _cell("OAI21_X1", ["A", "B", "C"], tt_oai21, area=1.2, cap=1.2, intrinsic=13.0, slope=3.8),
        _cell("AOI22_X1", ["A", "B", "C", "D"], tt_aoi22, area=1.5, cap=1.3, intrinsic=15.0, slope=4.0),
        _cell("OAI22_X1", ["A", "B", "C", "D"], tt_oai22, area=1.5, cap=1.3, intrinsic=15.0, slope=4.0),
    ]
    return Library("nangate_lite", cells)
