"""Circuit representations: AIGs, cell libraries, netlists, graphs, benchmarks.

This subpackage is the design substrate everything else operates on:

* :mod:`repro.netlist.aig` — And-Inverter Graphs (synthesis IR).
* :mod:`repro.netlist.cells` — liberty-lite standard-cell library.
* :mod:`repro.netlist.netlist` — gate-level netlists.
* :mod:`repro.netlist.stargraph` — design-to-graph conversion for the GCN.
* :mod:`repro.netlist.generators` — parametric circuit generators.
* :mod:`repro.netlist.benchmarks` — the named benchmark suite.
* :mod:`repro.netlist.verilog` — structural Verilog I/O.
"""

from .aig import AIG, AIGStats, CONST_FALSE, CONST_TRUE, lit, lit_node, lit_not
from .cells import Cell, Library, nangate_lite
from .netlist import Instance, Net, Netlist, NetlistError, NetlistStats
from .stargraph import (
    AIG_FEATURE_DIM,
    NETLIST_FEATURE_DIM,
    GraphSample,
    aig_to_graph,
    netlist_to_clique_graph,
    netlist_to_star_graph,
)
from . import benchmarks, generators, verilog

__all__ = [
    "AIG",
    "AIGStats",
    "CONST_FALSE",
    "CONST_TRUE",
    "lit",
    "lit_node",
    "lit_not",
    "Cell",
    "Library",
    "nangate_lite",
    "Instance",
    "Net",
    "Netlist",
    "NetlistError",
    "NetlistStats",
    "GraphSample",
    "AIG_FEATURE_DIM",
    "NETLIST_FEATURE_DIM",
    "aig_to_graph",
    "netlist_to_star_graph",
    "netlist_to_clique_graph",
    "benchmarks",
    "generators",
    "verilog",
]
