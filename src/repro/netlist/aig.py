"""And-Inverter Graph (AIG) data structure.

The AIG is the intermediate representation used by logic synthesis.  The
paper's runtime-prediction model for the *synthesis* stage operates directly
on the AIG of the input design (Section III-B, "Processing Input Design"),
because synthesis tools map RTL into an AIG before technology mapping.

Representation
--------------
Nodes are integers.  Node ``0`` is the constant-FALSE node.  Primary inputs
and AND nodes share the same id space.  Edges carry an optional complement
(inversion) attribute, so an edge is referred to by a *literal*::

    literal = 2 * node + complemented

This is the classic AIGER encoding: literal ``0`` is constant FALSE,
literal ``1`` is constant TRUE, literal ``2*k`` is node ``k``, and literal
``2*k + 1`` is the complement of node ``k``.

AND nodes are created through :meth:`AIG.add_and`, which performs constant
propagation, trivial simplification and structural hashing, so the graph
never contains two AND nodes with the same (ordered) fanin literals.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "AIG",
    "AIGStats",
    "lit",
    "lit_node",
    "lit_is_complemented",
    "lit_not",
    "lit_regular",
    "CONST_FALSE",
    "CONST_TRUE",
]

#: Literal of the constant-FALSE function.
CONST_FALSE = 0
#: Literal of the constant-TRUE function.
CONST_TRUE = 1


def lit(node: int, complemented: bool = False) -> int:
    """Build a literal from a node id and a complement flag."""
    return 2 * node + (1 if complemented else 0)


def lit_node(literal: int) -> int:
    """Return the node id a literal refers to."""
    return literal >> 1


def lit_is_complemented(literal: int) -> bool:
    """Return ``True`` when the literal carries an inversion."""
    return bool(literal & 1)


def lit_not(literal: int) -> int:
    """Return the complement of a literal."""
    return literal ^ 1


def lit_regular(literal: int) -> int:
    """Return the non-complemented version of a literal."""
    return literal & ~1


@dataclass(frozen=True)
class AIGStats:
    """Summary statistics of an AIG.

    These are the raw structural quantities that drive both the synthesis
    engine's work model and the graph features fed to the GCN predictor.
    """

    num_inputs: int
    num_outputs: int
    num_ands: int
    depth: int

    @property
    def num_nodes(self) -> int:
        """Total node count including the constant node."""
        return 1 + self.num_inputs + self.num_ands


class AIG:
    """A combinational And-Inverter Graph with structural hashing.

    Parameters
    ----------
    name:
        Optional human-readable design name (e.g. ``"adder_32"``).

    Notes
    -----
    Nodes are appended in topological order by construction: an AND node can
    only be created after both of its fanins exist.  Many algorithms exploit
    this by simply iterating over ``range(1, aig.size)``.
    """

    def __init__(self, name: str = "aig"):
        self.name = name
        # fanins[i] is None for PIs and the constant node, else (lit0, lit1)
        self._fanins: List[Optional[Tuple[int, int]]] = [None]  # node 0 = const
        self._is_input: List[bool] = [False]
        self._inputs: List[int] = []
        self._input_names: List[str] = []
        self._outputs: List[int] = []  # literals
        self._output_names: List[str] = []
        self._strash: Dict[Tuple[int, int], int] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_input(self, name: Optional[str] = None) -> int:
        """Create a primary input and return its (non-complemented) literal."""
        node = len(self._fanins)
        self._fanins.append(None)
        self._is_input.append(True)
        self._inputs.append(node)
        self._input_names.append(name if name is not None else f"pi{len(self._inputs) - 1}")
        return lit(node)

    def add_and(self, a: int, b: int) -> int:
        """Create (or reuse) an AND node over two literals; return its literal.

        Applies constant propagation (``x & 0 = 0``, ``x & 1 = x``), trivial
        rules (``x & x = x``, ``x & ~x = 0``) and structural hashing.
        """
        self._check_literal(a)
        self._check_literal(b)
        if a > b:
            a, b = b, a
        if a == CONST_FALSE:
            return CONST_FALSE
        if a == CONST_TRUE:
            return b
        if a == b:
            return a
        if a == lit_not(b):
            return CONST_FALSE
        key = (a, b)
        existing = self._strash.get(key)
        if existing is not None:
            return lit(existing)
        node = len(self._fanins)
        self._fanins.append(key)
        self._is_input.append(False)
        self._strash[key] = node
        return lit(node)

    def add_or(self, a: int, b: int) -> int:
        """Create an OR as a complemented AND of complements."""
        return lit_not(self.add_and(lit_not(a), lit_not(b)))

    def add_xor(self, a: int, b: int) -> int:
        """Create an XOR from three AND nodes."""
        return self.add_or(self.add_and(a, lit_not(b)), self.add_and(lit_not(a), b))

    def add_xnor(self, a: int, b: int) -> int:
        """Create the complement of XOR."""
        return lit_not(self.add_xor(a, b))

    def add_mux(self, sel: int, a: int, b: int) -> int:
        """Create ``sel ? a : b``."""
        return self.add_or(self.add_and(sel, a), self.add_and(lit_not(sel), b))

    def add_maj(self, a: int, b: int, c: int) -> int:
        """Create the majority function of three literals."""
        return self.add_or(
            self.add_and(a, b), self.add_or(self.add_and(a, c), self.add_and(b, c))
        )

    def add_output(self, literal: int, name: Optional[str] = None) -> int:
        """Mark a literal as a primary output; return its output index."""
        self._check_literal(literal)
        self._outputs.append(literal)
        self._output_names.append(
            name if name is not None else f"po{len(self._outputs) - 1}"
        )
        return len(self._outputs) - 1

    def _check_literal(self, literal: int) -> None:
        if literal < 0 or lit_node(literal) >= len(self._fanins):
            raise ValueError(f"literal {literal} refers to an unknown node")

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Total node count, including the constant node and inputs."""
        return len(self._fanins)

    @property
    def num_inputs(self) -> int:
        return len(self._inputs)

    @property
    def num_outputs(self) -> int:
        return len(self._outputs)

    @property
    def num_ands(self) -> int:
        return len(self._fanins) - 1 - len(self._inputs)

    @property
    def inputs(self) -> List[int]:
        """Node ids of the primary inputs, in creation order."""
        return list(self._inputs)

    @property
    def input_names(self) -> List[str]:
        return list(self._input_names)

    @property
    def outputs(self) -> List[int]:
        """Output literals, in creation order."""
        return list(self._outputs)

    @property
    def output_names(self) -> List[str]:
        return list(self._output_names)

    def is_input(self, node: int) -> bool:
        return self._is_input[node]

    def is_and(self, node: int) -> bool:
        return node > 0 and not self._is_input[node]

    def fanins(self, node: int) -> Tuple[int, int]:
        """Return the two fanin literals of an AND node."""
        pair = self._fanins[node]
        if pair is None:
            raise ValueError(f"node {node} is not an AND node")
        return pair

    def and_nodes(self) -> Iterator[int]:
        """Iterate over AND node ids in topological order."""
        for node in range(1, len(self._fanins)):
            if not self._is_input[node]:
                yield node

    def edges(self) -> Iterator[Tuple[int, int, bool]]:
        """Iterate over ``(src_node, dst_node, complemented)`` edges."""
        for node in self.and_nodes():
            a, b = self._fanins[node]  # type: ignore[misc]
            yield lit_node(a), node, lit_is_complemented(a)
            yield lit_node(b), node, lit_is_complemented(b)

    def fanout_counts(self) -> List[int]:
        """Return the fanout count of every node (output refs included)."""
        counts = [0] * self.size
        for node in self.and_nodes():
            a, b = self._fanins[node]  # type: ignore[misc]
            counts[lit_node(a)] += 1
            counts[lit_node(b)] += 1
        for out in self._outputs:
            counts[lit_node(out)] += 1
        return counts

    def levels(self) -> List[int]:
        """Return the logic level of every node (inputs are level 0)."""
        level = [0] * self.size
        for node in self.and_nodes():
            a, b = self._fanins[node]  # type: ignore[misc]
            level[node] = 1 + max(level[lit_node(a)], level[lit_node(b)])
        return level

    def depth(self) -> int:
        """Return the depth of the AIG (longest input-to-output path)."""
        if self.num_outputs == 0:
            return 0
        level = self.levels()
        return max(level[lit_node(out)] for out in self._outputs)

    def stats(self) -> AIGStats:
        """Return structural summary statistics."""
        return AIGStats(
            num_inputs=self.num_inputs,
            num_outputs=self.num_outputs,
            num_ands=self.num_ands,
            depth=self.depth(),
        )

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def simulate(self, input_words: Sequence[int], width: int = 64) -> List[int]:
        """Bit-parallel simulation.

        Parameters
        ----------
        input_words:
            One integer per primary input; bit ``i`` of each word is the value
            of that input in simulation pattern ``i``.
        width:
            Number of patterns packed into each word.

        Returns
        -------
        list of int
            One word per primary output.
        """
        if len(input_words) != self.num_inputs:
            raise ValueError(
                f"expected {self.num_inputs} input words, got {len(input_words)}"
            )
        mask = (1 << width) - 1
        values = [0] * self.size
        for node, word in zip(self._inputs, input_words):
            values[node] = word & mask
        for node in self.and_nodes():
            a, b = self._fanins[node]  # type: ignore[misc]
            va = values[lit_node(a)] ^ (mask if lit_is_complemented(a) else 0)
            vb = values[lit_node(b)] ^ (mask if lit_is_complemented(b) else 0)
            values[node] = va & vb
        result = []
        for out in self._outputs:
            v = values[lit_node(out)]
            if lit_is_complemented(out):
                v ^= mask
            result.append(v & mask)
        return result

    def simulate_pattern(self, bits: Sequence[bool]) -> List[bool]:
        """Simulate a single input pattern of booleans."""
        words = [1 if b else 0 for b in bits]
        return [bool(w & 1) for w in self.simulate(words, width=1)]

    def random_simulation_signature(
        self, patterns: int = 64, seed: int = 0
    ) -> List[int]:
        """Return per-output signatures under random stimulus.

        Used as a cheap equivalence fingerprint in synthesis tests: two AIGs
        implementing the same function have identical signatures for the same
        seed.
        """
        rng = random.Random(seed)
        words = [rng.getrandbits(patterns) for _ in range(self.num_inputs)]
        return self.simulate(words, width=patterns)

    # ------------------------------------------------------------------
    # Transformation helpers
    # ------------------------------------------------------------------
    def cleanup(self) -> "AIG":
        """Return a copy without dangling nodes (unreachable from outputs)."""
        reachable = set()
        stack = [lit_node(out) for out in self._outputs]
        while stack:
            node = stack.pop()
            if node in reachable:
                continue
            reachable.add(node)
            pair = self._fanins[node]
            if pair is not None:
                stack.append(lit_node(pair[0]))
                stack.append(lit_node(pair[1]))
        new = AIG(self.name)
        mapping: Dict[int, int] = {0: CONST_FALSE}
        for node, name in zip(self._inputs, self._input_names):
            # All inputs are kept so the interface is stable.
            mapping[node] = new.add_input(name)
        for node in self.and_nodes():
            if node not in reachable:
                continue
            a, b = self._fanins[node]  # type: ignore[misc]
            na = mapping[lit_node(a)] ^ (1 if lit_is_complemented(a) else 0)
            nb = mapping[lit_node(b)] ^ (1 if lit_is_complemented(b) else 0)
            mapping[node] = new.add_and(na, nb)
        for out, name in zip(self._outputs, self._output_names):
            mapped = mapping[lit_node(out)] ^ (1 if lit_is_complemented(out) else 0)
            new.add_output(mapped, name)
        return new

    def copy(self) -> "AIG":
        """Return a deep copy of this AIG."""
        new = AIG(self.name)
        new._fanins = list(self._fanins)
        new._is_input = list(self._is_input)
        new._inputs = list(self._inputs)
        new._input_names = list(self._input_names)
        new._outputs = list(self._outputs)
        new._output_names = list(self._output_names)
        new._strash = dict(self._strash)
        return new

    def transitive_fanin_cone(self, root_literal: int) -> List[int]:
        """Return node ids in the transitive fanin of a literal (topological)."""
        seen = set()
        order: List[int] = []

        stack = [(lit_node(root_literal), False)]
        while stack:
            node, expanded = stack.pop()
            if expanded:
                order.append(node)
                continue
            if node in seen:
                continue
            seen.add(node)
            stack.append((node, True))
            pair = self._fanins[node]
            if pair is not None:
                stack.append((lit_node(pair[0]), False))
                stack.append((lit_node(pair[1]), False))
        return order

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"AIG(name={self.name!r}, inputs={self.num_inputs}, "
            f"outputs={self.num_outputs}, ands={self.num_ands}, depth={self.depth()})"
        )
