"""Parametric combinational circuit generators.

The paper's dataset comes from the EPFL combinational benchmark suite,
OpenCores designs, and the OpenPiton SPARC core — none of which we can ship
with a 14nm flow.  This module builds *structurally comparable* circuits from
scratch: arithmetic blocks (adders, multipliers, shifters), control blocks
(arbiters, decoders, priority logic, routers) and seeded random control
logic.  Each generator is parametric in width/size so the named benchmark
suite (:mod:`repro.netlist.benchmarks`) can scale designs from a few hundred
to tens of thousands of AIG nodes.

All generators return an :class:`repro.netlist.aig.AIG`.
"""

from __future__ import annotations

import random
import zlib
from typing import List, Sequence, Tuple

from .aig import AIG, CONST_FALSE, CONST_TRUE, lit_not

__all__ = [
    "ripple_adder",
    "carry_select_adder",
    "multiplier",
    "square",
    "barrel_shifter",
    "max_unit",
    "alu",
    "divider",
    "sin_approx",
    "log2_approx",
    "priority_encoder",
    "decoder",
    "arbiter",
    "round_robin_arbiter",
    "voter",
    "parity",
    "comparator",
    "crossbar_router",
    "int2float",
    "random_control",
    "sbox_layer",
    "dynamic_node_proxy",
    "aes_proxy",
    "fpu_proxy",
    "sparc_core_proxy",
]

Word = List[int]


# ----------------------------------------------------------------------
# Word-level helpers
# ----------------------------------------------------------------------
def _input_word(aig: AIG, name: str, width: int) -> Word:
    return [aig.add_input(f"{name}[{i}]") for i in range(width)]


def _output_word(aig: AIG, name: str, bits: Sequence[int]) -> None:
    for i, b in enumerate(bits):
        aig.add_output(b, f"{name}[{i}]")


def _full_adder(aig: AIG, a: int, b: int, cin: int) -> Tuple[int, int]:
    """Return (sum, carry) of a full adder."""
    s = aig.add_xor(aig.add_xor(a, b), cin)
    c = aig.add_maj(a, b, cin)
    return s, c


def _add_words(aig: AIG, a: Word, b: Word, cin: int = CONST_FALSE) -> Tuple[Word, int]:
    """Ripple-carry addition of two equal-width words."""
    if len(a) != len(b):
        raise ValueError("operand widths differ")
    out: Word = []
    carry = cin
    for ai, bi in zip(a, b):
        s, carry = _full_adder(aig, ai, bi, carry)
        out.append(s)
    return out, carry


def _sub_words(aig: AIG, a: Word, b: Word) -> Tuple[Word, int]:
    """a - b via two's complement; returns (difference, borrow-free flag)."""
    nb = [lit_not(x) for x in b]
    diff, carry = _add_words(aig, a, nb, CONST_TRUE)
    return diff, carry  # carry==1 means a >= b


def _mux_words(aig: AIG, sel: int, a: Word, b: Word) -> Word:
    """Per-bit ``sel ? a : b``."""
    return [aig.add_mux(sel, x, y) for x, y in zip(a, b)]


def _and_word(aig: AIG, bit: int, word: Word) -> Word:
    return [aig.add_and(bit, w) for w in word]


def _reduce_or(aig: AIG, bits: Sequence[int]) -> int:
    """Balanced OR-tree reduction."""
    work = list(bits)
    if not work:
        return CONST_FALSE
    while len(work) > 1:
        nxt = [
            aig.add_or(work[i], work[i + 1]) if i + 1 < len(work) else work[i]
            for i in range(0, len(work), 2)
        ]
        work = nxt
    return work[0]


def _reduce_and(aig: AIG, bits: Sequence[int]) -> int:
    work = list(bits)
    if not work:
        return CONST_TRUE
    while len(work) > 1:
        nxt = [
            aig.add_and(work[i], work[i + 1]) if i + 1 < len(work) else work[i]
            for i in range(0, len(work), 2)
        ]
        work = nxt
    return work[0]


def _reduce_xor(aig: AIG, bits: Sequence[int]) -> int:
    work = list(bits)
    if not work:
        return CONST_FALSE
    while len(work) > 1:
        nxt = [
            aig.add_xor(work[i], work[i + 1]) if i + 1 < len(work) else work[i]
            for i in range(0, len(work), 2)
        ]
        work = nxt
    return work[0]


# ----------------------------------------------------------------------
# Arithmetic benchmarks ("adder", "multiplier", "square", "bar", ...)
# ----------------------------------------------------------------------
def ripple_adder(width: int = 32) -> AIG:
    """Ripple-carry adder: the EPFL ``adder`` analogue."""
    aig = AIG(f"adder_{width}")
    a = _input_word(aig, "a", width)
    b = _input_word(aig, "b", width)
    cin = aig.add_input("cin")
    s, cout = _add_words(aig, a, b, cin)
    _output_word(aig, "sum", s)
    aig.add_output(cout, "cout")
    return aig


def carry_select_adder(width: int = 32, block: int = 4) -> AIG:
    """Carry-select adder: same function as :func:`ripple_adder`, different structure."""
    aig = AIG(f"csel_adder_{width}")
    a = _input_word(aig, "a", width)
    b = _input_word(aig, "b", width)
    cin = aig.add_input("cin")
    out: Word = []
    carry = cin
    for start in range(0, width, block):
        ab = a[start : start + block]
        bb = b[start : start + block]
        s0, c0 = _add_words(aig, ab, bb, CONST_FALSE)
        s1, c1 = _add_words(aig, ab, bb, CONST_TRUE)
        out.extend(_mux_words(aig, carry, s1, s0))
        carry = aig.add_mux(carry, c1, c0)
    _output_word(aig, "sum", out)
    aig.add_output(carry, "cout")
    return aig


def multiplier(width: int = 12) -> AIG:
    """Array multiplier: the EPFL ``multiplier`` analogue."""
    aig = AIG(f"multiplier_{width}")
    a = _input_word(aig, "a", width)
    b = _input_word(aig, "b", width)
    acc: Word = [CONST_FALSE] * (2 * width)
    for i, bi in enumerate(b):
        partial = [CONST_FALSE] * (2 * width)
        for j, aj in enumerate(a):
            partial[i + j] = aig.add_and(bi, aj)
        acc, _ = _add_words(aig, acc, partial)
    _output_word(aig, "p", acc)
    return aig


def square(width: int = 12) -> AIG:
    """Squarer: the EPFL ``square`` analogue (multiplier with shared operand)."""
    aig = AIG(f"square_{width}")
    a = _input_word(aig, "a", width)
    acc: Word = [CONST_FALSE] * (2 * width)
    for i, bi in enumerate(a):
        partial = [CONST_FALSE] * (2 * width)
        for j, aj in enumerate(a):
            partial[i + j] = aig.add_and(bi, aj)
        acc, _ = _add_words(aig, acc, partial)
    _output_word(aig, "p", acc)
    return aig


def barrel_shifter(width: int = 32) -> AIG:
    """Logarithmic barrel shifter: the EPFL ``bar`` analogue."""
    aig = AIG(f"bar_{width}")
    data = _input_word(aig, "d", width)
    select_bits = max(1, (width - 1).bit_length())
    sel = _input_word(aig, "s", select_bits)
    current = data
    for stage, s in enumerate(sel):
        shift = 1 << stage
        shifted = [
            current[i - shift] if i - shift >= 0 else CONST_FALSE
            for i in range(width)
        ]
        current = _mux_words(aig, s, shifted, current)
    _output_word(aig, "q", current)
    return aig


def comparator(width: int = 32) -> AIG:
    """Unsigned comparator producing eq/lt/gt flags."""
    aig = AIG(f"cmp_{width}")
    a = _input_word(aig, "a", width)
    b = _input_word(aig, "b", width)
    eq = _reduce_and(aig, [aig.add_xnor(x, y) for x, y in zip(a, b)])
    _diff, a_ge_b = _sub_words(aig, a, b)
    gt = aig.add_and(a_ge_b, lit_not(eq))
    lt = lit_not(aig.add_or(gt, eq))
    aig.add_output(eq, "eq")
    aig.add_output(lt, "lt")
    aig.add_output(gt, "gt")
    return aig


def max_unit(width: int = 32, operands: int = 4) -> AIG:
    """N-operand maximum: the EPFL ``max`` analogue."""
    aig = AIG(f"max_{operands}x{width}")
    words = [_input_word(aig, f"x{i}", width) for i in range(operands)]
    best = words[0]
    for w in words[1:]:
        _diff, best_ge_w = _sub_words(aig, best, w)
        best = _mux_words(aig, best_ge_w, best, w)
    _output_word(aig, "max", best)
    return aig


def alu(width: int = 16) -> AIG:
    """A small ALU (add/sub/and/or/xor/shift) behind an opcode mux."""
    aig = AIG(f"alu_{width}")
    a = _input_word(aig, "a", width)
    b = _input_word(aig, "b", width)
    op = _input_word(aig, "op", 3)
    add_r, _ = _add_words(aig, a, b)
    sub_r, _ = _sub_words(aig, a, b)
    and_r = [aig.add_and(x, y) for x, y in zip(a, b)]
    or_r = [aig.add_or(x, y) for x, y in zip(a, b)]
    xor_r = [aig.add_xor(x, y) for x, y in zip(a, b)]
    shl_r = [CONST_FALSE] + a[:-1]
    shr_r = a[1:] + [CONST_FALSE]
    not_r = [lit_not(x) for x in a]
    ops = [add_r, sub_r, and_r, or_r, xor_r, shl_r, shr_r, not_r]
    # 8:1 word mux on op bits.
    layer = ops
    for bit in op:
        layer = [
            _mux_words(aig, bit, layer[i + 1], layer[i]) for i in range(0, len(layer), 2)
        ]
    _output_word(aig, "y", layer[0])
    return aig


def divider(width: int = 8) -> AIG:
    """Restoring divider: the EPFL ``div`` analogue (quadratic in width)."""
    aig = AIG(f"div_{width}")
    num = _input_word(aig, "n", width)
    den = _input_word(aig, "d", width)
    remainder: Word = [CONST_FALSE] * width
    quotient: Word = [CONST_FALSE] * width
    for step in range(width - 1, -1, -1):
        remainder = [num[step]] + remainder[:-1]
        diff, no_borrow = _sub_words(aig, remainder, den)
        remainder = _mux_words(aig, no_borrow, diff, remainder)
        quotient[step] = no_borrow
    _output_word(aig, "q", quotient)
    _output_word(aig, "r", remainder)
    return aig


def _const_word(value: int, width: int) -> Word:
    return [CONST_TRUE if (value >> i) & 1 else CONST_FALSE for i in range(width)]


def _mul_word_const(aig: AIG, x: Word, const: int) -> Word:
    """Multiply a word by a small constant via shift-and-add (truncated)."""
    width = len(x)
    acc: Word = [CONST_FALSE] * width
    shift = 0
    while const and shift < width:
        if const & 1:
            shifted = [CONST_FALSE] * shift + x[: width - shift]
            acc, _ = _add_words(aig, acc, shifted)
        const >>= 1
        shift += 1
    return acc


def _mul_words_trunc(aig: AIG, a: Word, b: Word) -> Word:
    """Truncated (same-width) multiplication used by polynomial evaluators."""
    width = len(a)
    acc: Word = [CONST_FALSE] * width
    for i, bi in enumerate(b):
        partial = [CONST_FALSE] * width
        for j, aj in enumerate(a):
            if i + j < width:
                partial[i + j] = aig.add_and(bi, aj)
        acc, _ = _add_words(aig, acc, partial)
    return acc


def sin_approx(width: int = 12, terms: int = 3) -> AIG:
    """Fixed-point polynomial evaluator: the EPFL ``sin`` analogue.

    Evaluates a Horner-form polynomial with alternating-sign constant
    coefficients — structurally a chain of truncated multipliers and adders,
    like the EPFL arithmetic approximation benchmarks.
    """
    aig = AIG(f"sin_{width}")
    x = _input_word(aig, "x", width)
    coeffs = [0b1011, 0b0110, 0b1101, 0b0101, 0b1001][: max(1, terms)]
    acc = _const_word(coeffs[0], width)
    for coef in coeffs[1:]:
        acc = _mul_words_trunc(aig, acc, x)
        acc, _ = _add_words(aig, acc, _const_word(coef, width))
    _output_word(aig, "y", acc)
    return aig


def log2_approx(width: int = 16) -> AIG:
    """Leading-one detector + fractional interpolation: ``log2`` analogue."""
    aig = AIG(f"log2_{width}")
    x = _input_word(aig, "x", width)
    # Priority chain from MSB: position of leading one (one-hot).
    none_above = CONST_TRUE
    onehot: Word = [CONST_FALSE] * width
    for i in range(width - 1, -1, -1):
        onehot[i] = aig.add_and(none_above, x[i])
        none_above = aig.add_and(none_above, lit_not(x[i]))
    # Integer part: binary encoding of the leading-one position.
    pos_bits = max(1, (width - 1).bit_length())
    int_part: Word = []
    for b in range(pos_bits):
        terms = [onehot[i] for i in range(width) if (i >> b) & 1]
        int_part.append(_reduce_or(aig, terms))
    # Fractional part: bits below the leading one, shifted up (approximation
    # realized as masked OR layers — keeps the graph search-heavy).
    frac: Word = []
    for k in range(1, min(5, width)):
        terms = [aig.add_and(onehot[i], x[i - k]) for i in range(k, width)]
        frac.append(_reduce_or(aig, terms))
    _output_word(aig, "int", int_part)
    _output_word(aig, "frac", frac)
    return aig


# ----------------------------------------------------------------------
# Control benchmarks ("arbiter", "priority", "dec", "router", "voter", ...)
# ----------------------------------------------------------------------
def priority_encoder(width: int = 64) -> AIG:
    """Priority encoder: the EPFL ``priority`` analogue."""
    aig = AIG(f"priority_{width}")
    req = _input_word(aig, "r", width)
    none_above = CONST_TRUE
    grant: Word = []
    for i in range(width):
        grant.append(aig.add_and(none_above, req[i]))
        none_above = aig.add_and(none_above, lit_not(req[i]))
    _output_word(aig, "g", grant)
    aig.add_output(lit_not(none_above), "valid")
    return aig


def decoder(bits: int = 6) -> AIG:
    """Full binary decoder: the EPFL ``dec`` analogue (2^bits outputs)."""
    aig = AIG(f"dec_{bits}")
    sel = _input_word(aig, "s", bits)
    en = aig.add_input("en")
    for value in range(1 << bits):
        terms = [sel[b] if (value >> b) & 1 else lit_not(sel[b]) for b in range(bits)]
        aig.add_output(aig.add_and(_reduce_and(aig, terms), en), f"o[{value}]")
    return aig


def arbiter(width: int = 32) -> AIG:
    """Priority arbiter with a masked two-pass scheme: ``arbiter`` analogue."""
    aig = AIG(f"arbiter_{width}")
    req = _input_word(aig, "r", width)
    mask = _input_word(aig, "m", width)
    masked = [aig.add_and(r, m) for r, m in zip(req, mask)]
    any_masked = _reduce_or(aig, masked)

    def _grant_chain(requests: Word) -> Word:
        none_above = CONST_TRUE
        out: Word = []
        for r in requests:
            out.append(aig.add_and(none_above, r))
            none_above = aig.add_and(none_above, lit_not(r))
        return out

    g_masked = _grant_chain(masked)
    g_raw = _grant_chain(req)
    grant = _mux_words(aig, any_masked, g_masked, g_raw)
    _output_word(aig, "g", grant)
    return aig


def round_robin_arbiter(width: int = 16) -> AIG:
    """Round-robin arbiter: thermometer mask derived from a pointer input."""
    aig = AIG(f"rr_arbiter_{width}")
    req = _input_word(aig, "r", width)
    ptr = _input_word(aig, "p", width)  # one-hot pointer (externally held)
    # Thermometer mask: positions at or after the pointer.
    mask: Word = []
    seen = CONST_FALSE
    for i in range(width):
        seen = aig.add_or(seen, ptr[i])
        mask.append(seen)
    masked = [aig.add_and(r, m) for r, m in zip(req, mask)]
    any_masked = _reduce_or(aig, masked)

    def _grant_chain(requests: Word) -> Word:
        none_above = CONST_TRUE
        out: Word = []
        for r in requests:
            out.append(aig.add_and(none_above, r))
            none_above = aig.add_and(none_above, lit_not(r))
        return out

    grant = _mux_words(aig, any_masked, _grant_chain(masked), _grant_chain(req))
    _output_word(aig, "g", grant)
    return aig


def voter(inputs: int = 15) -> AIG:
    """Majority voter over N inputs via a population-count compare: ``voter``."""
    aig = AIG(f"voter_{inputs}")
    x = _input_word(aig, "x", inputs)
    # Population count with a full-adder tree.
    width = inputs.bit_length()
    count: Word = [CONST_FALSE] * width
    for bit in x:
        one = [bit] + [CONST_FALSE] * (width - 1)
        count, _ = _add_words(aig, count, one)
    threshold = inputs // 2 + 1
    _diff, ge = _sub_words(aig, count, _const_word(threshold, width))
    aig.add_output(ge, "maj")
    return aig


def parity(width: int = 64) -> AIG:
    """Wide XOR-tree parity generator."""
    aig = AIG(f"parity_{width}")
    x = _input_word(aig, "x", width)
    aig.add_output(_reduce_xor(aig, x), "p")
    return aig


def crossbar_router(ports: int = 4, width: int = 8) -> AIG:
    """Crossbar switch with per-output port selection: ``router`` analogue."""
    aig = AIG(f"router_{ports}x{width}")
    data = [_input_word(aig, f"d{i}", width) for i in range(ports)]
    sel_bits = max(1, (ports - 1).bit_length())
    sels = [_input_word(aig, f"s{o}", sel_bits) for o in range(ports)]
    for o in range(ports):
        # Decode the select and OR the gated inputs together.
        out: Word = [CONST_FALSE] * width
        for i in range(ports):
            match_terms = [
                sels[o][b] if (i >> b) & 1 else lit_not(sels[o][b])
                for b in range(sel_bits)
            ]
            match = _reduce_and(aig, match_terms)
            gated = _and_word(aig, match, data[i])
            out = [aig.add_or(x, y) for x, y in zip(out, gated)]
        _output_word(aig, f"q{o}", out)
    return aig


def int2float(width: int = 16, mantissa: int = 6) -> AIG:
    """Integer-to-float converter: leading-one detect + normalize shift."""
    aig = AIG(f"int2float_{width}")
    x = _input_word(aig, "x", width)
    none_above = CONST_TRUE
    onehot: Word = [CONST_FALSE] * width
    for i in range(width - 1, -1, -1):
        onehot[i] = aig.add_and(none_above, x[i])
        none_above = aig.add_and(none_above, lit_not(x[i]))
    exp_bits = max(1, (width - 1).bit_length())
    exponent: Word = []
    for b in range(exp_bits):
        exponent.append(
            _reduce_or(aig, [onehot[i] for i in range(width) if (i >> b) & 1])
        )
    mant: Word = []
    for k in range(1, mantissa + 1):
        terms = [aig.add_and(onehot[i], x[i - k]) for i in range(k, width)]
        mant.append(_reduce_or(aig, terms))
    aig.add_output(lit_not(none_above), "nonzero")
    _output_word(aig, "exp", exponent)
    _output_word(aig, "mant", mant)
    return aig


def random_control(
    name: str = "ctrl", num_inputs: int = 32, num_gates: int = 300, seed: int = 0
) -> AIG:
    """Seeded random control logic: analogue of ``ctrl``/``i2c``/``cavlc``/``mem_ctrl``.

    Builds a random DAG of AND/OR/XOR/MUX operators over earlier signals.
    The same (name, sizes, seed) always yields the same graph.
    """
    # zlib.crc32 is stable across processes (unlike str hash,
    # which PYTHONHASHSEED randomizes).
    rng = random.Random((zlib.crc32(name.encode()) & 0xFFFF) * 65537 + seed)
    aig = AIG(f"{name}_{num_inputs}x{num_gates}")
    signals: Word = [aig.add_input(f"x[{i}]") for i in range(num_inputs)]
    for _ in range(num_gates):
        op = rng.random()
        a = rng.choice(signals)
        b = rng.choice(signals)
        if rng.random() < 0.3:
            a = lit_not(a)
        if rng.random() < 0.3:
            b = lit_not(b)
        if op < 0.45:
            out = aig.add_and(a, b)
        elif op < 0.75:
            out = aig.add_or(a, b)
        elif op < 0.9:
            out = aig.add_xor(a, b)
        else:
            out = aig.add_mux(rng.choice(signals), a, b)
        signals.append(out)
    # Expose a deterministic sample of late signals as outputs.
    num_outputs = max(4, num_gates // 24)
    tail = signals[num_inputs:]
    step = max(1, len(tail) // num_outputs)
    for i, s in enumerate(tail[::step][:num_outputs]):
        aig.add_output(s, f"y[{i}]")
    return aig


def sbox_layer(bytes_wide: int = 4, seed: int = 7) -> AIG:
    """Random 8->8 S-box layer followed by an XOR mix: ``aes``-like texture."""
    rng = random.Random(seed)
    aig = AIG(f"sbox_{bytes_wide}")
    inputs = [_input_word(aig, f"b{i}", 8) for i in range(bytes_wide)]
    sboxed: List[Word] = []
    for word in inputs:
        table = list(range(256))
        rng.shuffle(table)
        out_bits: Word = []
        for bit in range(8):
            minterms = [v for v in range(256) if (table[v] >> bit) & 1]
            # Build a (sparse, randomized) sum-of-products over the 8 inputs.
            sampled = rng.sample(minterms, min(len(minterms), 24))
            products = []
            for m in sampled:
                lits = [word[j] if (m >> j) & 1 else lit_not(word[j]) for j in range(8)]
                products.append(_reduce_and(aig, lits))
            out_bits.append(_reduce_or(aig, products))
        sboxed.append(out_bits)
    # Mix layer: XOR neighbouring bytes.
    for i, word in enumerate(sboxed):
        mixed = [
            aig.add_xor(b, sboxed[(i + 1) % bytes_wide][j]) for j, b in enumerate(word)
        ]
        _output_word(aig, f"o{i}", mixed)
    return aig


# ----------------------------------------------------------------------
# OpenPiton design proxies (Figure 3's designs)
# ----------------------------------------------------------------------
def _absorb(dst: AIG, src: AIG, prefix: str) -> None:
    """Copy ``src`` into ``dst`` with fresh inputs, prefixing port names."""
    mapping = {0: CONST_FALSE}
    for node, name in zip(src.inputs, src.input_names):
        mapping[node] = dst.add_input(f"{prefix}.{name}")
    for node in src.and_nodes():
        a, b = src.fanins(node)
        na = mapping[a >> 1] ^ (a & 1)
        nb = mapping[b >> 1] ^ (b & 1)
        mapping[node] = dst.add_and(na, nb)
    for out, name in zip(src.outputs, src.output_names):
        dst.add_output(mapping[out >> 1] ^ (out & 1), f"{prefix}.{name}")


def dynamic_node_proxy(scale: float = 1.0) -> AIG:
    """Proxy for OpenPiton's ``dynamic_node`` NoC router (smallest design)."""
    ports = max(2, int(round(3 * scale)))
    width = max(4, int(round(8 * scale)))
    aig = AIG(f"dynamic_node_s{scale:g}")
    _absorb(aig, crossbar_router(ports=ports, width=width), "xbar")
    _absorb(aig, round_robin_arbiter(width=max(4, int(8 * scale))), "arb")
    _absorb(aig, random_control("noc_ctrl", 16, max(60, int(120 * scale)), seed=11), "ctl")
    return aig


def aes_proxy(scale: float = 1.0) -> AIG:
    """Proxy for an AES round: S-box layers plus XOR key mixing."""
    aig = AIG(f"aes_s{scale:g}")
    layers = max(1, int(round(2 * scale)))
    for layer in range(layers):
        _absorb(aig, sbox_layer(bytes_wide=4, seed=7 + layer), f"rnd{layer}")
    _absorb(aig, parity(width=32), "chk")
    return aig


def fpu_proxy(scale: float = 1.0) -> AIG:
    """Proxy for a floating-point unit: normalize/shift/multiply/add blocks."""
    width = max(8, int(round(12 * scale)))
    aig = AIG(f"fpu_s{scale:g}")
    _absorb(aig, int2float(width=2 * width, mantissa=width // 2), "norm")
    _absorb(aig, barrel_shifter(width=2 * width), "shift")
    _absorb(aig, multiplier(width=width), "mul")
    _absorb(aig, carry_select_adder(width=2 * width), "add")
    return aig


def sparc_core_proxy(scale: float = 1.0) -> AIG:
    """Proxy for the OpenPiton SPARC core (the paper's largest design).

    Composes an ALU, multiplier, shifter, decoder, register-forwarding muxes
    and random control clouds — the block mix of an in-order core datapath.
    """
    width = max(8, int(round(16 * scale)))
    aig = AIG(f"sparc_core_s{scale:g}")
    _absorb(aig, alu(width=width), "alu")
    _absorb(aig, multiplier(width=max(6, width // 2)), "mul")
    _absorb(aig, barrel_shifter(width=width), "shu")
    _absorb(aig, decoder(bits=max(4, int(round(5 * scale)))), "dec")
    _absorb(aig, priority_encoder(width=2 * width), "pri")
    _absorb(aig, crossbar_router(ports=4, width=width), "byp")
    _absorb(
        aig,
        random_control("lsu_ctrl", 24, max(150, int(400 * scale)), seed=3),
        "lsu",
    )
    _absorb(
        aig,
        random_control("ifu_ctrl", 24, max(150, int(400 * scale)), seed=5),
        "ifu",
    )
    _absorb(aig, comparator(width=width), "cmp")
    return aig
