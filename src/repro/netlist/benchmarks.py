"""Named benchmark suite.

Mirrors the paper's dataset composition: 18 designs from the EPFL
combinational suite and OpenCores (Section IV, "Dataset"), plus the
OpenPiton designs used in the characterization experiments (Figures 2-3 and
Table I).  Every entry maps to a parametric generator from
:mod:`repro.netlist.generators`; the ``scale`` knob grows or shrinks the
design while keeping its structural character.

Usage::

    from repro.netlist import benchmarks
    aig = benchmarks.build("multiplier")          # default size
    big = benchmarks.build("sparc_core", scale=2) # larger proxy
    for name in benchmarks.dataset_names():       # the 18 dataset designs
        ...
"""

from __future__ import annotations

from typing import Callable, Dict, List

from .aig import AIG
from . import generators as g

__all__ = [
    "build",
    "dataset_names",
    "characterization_names",
    "all_names",
    "BenchmarkInfo",
    "info",
]


class BenchmarkInfo:
    """Metadata for one named benchmark."""

    def __init__(self, name: str, kind: str, builder: Callable[[float], AIG], note: str):
        self.name = name
        self.kind = kind  # "arithmetic" | "control" | "openpiton"
        self.builder = builder
        self.note = note

    def build(self, scale: float = 1.0) -> AIG:
        aig = self.builder(scale)
        aig.name = self.name if scale == 1.0 else f"{self.name}_s{scale:g}"
        return aig


def _scaled(base: int, scale: float, lo: int = 2) -> int:
    return max(lo, int(round(base * scale)))


_REGISTRY: Dict[str, BenchmarkInfo] = {}


def _register(name: str, kind: str, note: str):
    def wrap(fn: Callable[[float], AIG]) -> Callable[[float], AIG]:
        _REGISTRY[name] = BenchmarkInfo(name, kind, fn, note)
        return fn

    return wrap


# --- EPFL-style arithmetic designs -----------------------------------
@_register("adder", "arithmetic", "ripple-carry adder (EPFL 'adder')")
def _adder(scale: float) -> AIG:
    return g.ripple_adder(width=_scaled(48, scale, lo=4))


@_register("bar", "arithmetic", "barrel shifter (EPFL 'bar')")
def _bar(scale: float) -> AIG:
    return g.barrel_shifter(width=_scaled(48, scale, lo=4))


@_register("div", "arithmetic", "restoring divider (EPFL 'div')")
def _div(scale: float) -> AIG:
    return g.divider(width=_scaled(10, scale, lo=4))


@_register("log2", "arithmetic", "leading-one log2 approximation (EPFL 'log2')")
def _log2(scale: float) -> AIG:
    return g.log2_approx(width=_scaled(40, scale, lo=8))


@_register("max", "arithmetic", "4-operand maximum (EPFL 'max')")
def _max(scale: float) -> AIG:
    return g.max_unit(width=_scaled(32, scale, lo=4), operands=4)


@_register("multiplier", "arithmetic", "array multiplier (EPFL 'multiplier')")
def _multiplier(scale: float) -> AIG:
    return g.multiplier(width=_scaled(14, scale, lo=4))


@_register("sin", "arithmetic", "fixed-point polynomial (EPFL 'sin')")
def _sin(scale: float) -> AIG:
    return g.sin_approx(width=_scaled(12, scale, lo=6), terms=3)


@_register("square", "arithmetic", "squarer (EPFL 'square')")
def _square(scale: float) -> AIG:
    return g.square(width=_scaled(13, scale, lo=4))


# --- EPFL-style / OpenCores control designs --------------------------
@_register("arbiter", "control", "masked priority arbiter (EPFL 'arbiter')")
def _arbiter(scale: float) -> AIG:
    return g.arbiter(width=_scaled(48, scale, lo=4))


@_register("priority", "control", "priority encoder (EPFL 'priority')")
def _priority(scale: float) -> AIG:
    return g.priority_encoder(width=_scaled(96, scale, lo=8))


@_register("dec", "control", "binary decoder (EPFL 'dec')")
def _dec(scale: float) -> AIG:
    return g.decoder(bits=_scaled(6, scale, lo=3))


@_register("router", "control", "crossbar router (EPFL 'router')")
def _router(scale: float) -> AIG:
    return g.crossbar_router(ports=4, width=_scaled(10, scale, lo=4))


@_register("voter", "control", "majority voter (EPFL 'voter')")
def _voter(scale: float) -> AIG:
    return g.voter(inputs=_scaled(31, scale, lo=5))


@_register("int2float", "control", "int-to-float converter (EPFL 'int2float')")
def _int2float(scale: float) -> AIG:
    return g.int2float(width=_scaled(24, scale, lo=8), mantissa=8)


@_register("ctrl", "control", "random control cloud (EPFL 'ctrl')")
def _ctrl(scale: float) -> AIG:
    return g.random_control("ctrl", 24, _scaled(260, scale, lo=40), seed=2)


@_register("cavlc", "control", "coder control cloud (EPFL 'cavlc')")
def _cavlc(scale: float) -> AIG:
    return g.random_control("cavlc", 20, _scaled(420, scale, lo=60), seed=9)


@_register("i2c", "control", "bus controller cloud (OpenCores 'i2c')")
def _i2c(scale: float) -> AIG:
    return g.random_control("i2c", 28, _scaled(600, scale, lo=80), seed=4)


@_register("mem_ctrl", "control", "memory controller cloud (OpenCores 'mem_ctrl')")
def _mem_ctrl(scale: float) -> AIG:
    return g.random_control("mem_ctrl", 48, _scaled(2400, scale, lo=200), seed=6)


# --- OpenPiton designs (characterization / Figure 3) ------------------
@_register("dynamic_node", "openpiton", "NoC router node (smallest, Fig. 3)")
def _dynamic_node(scale: float) -> AIG:
    return g.dynamic_node_proxy(scale=scale)


@_register("aes", "openpiton", "AES round proxy (small, Fig. 3)")
def _aes(scale: float) -> AIG:
    return g.aes_proxy(scale=scale)


@_register("fpu", "openpiton", "floating-point unit proxy (medium, Fig. 3)")
def _fpu(scale: float) -> AIG:
    return g.fpu_proxy(scale=scale)


@_register("sparc_core", "openpiton", "SPARC core proxy (largest, Figs. 2-3, Table I)")
def _sparc_core(scale: float) -> AIG:
    return g.sparc_core_proxy(scale=scale)


# ----------------------------------------------------------------------
def build(name: str, scale: float = 1.0) -> AIG:
    """Build a named benchmark at the requested scale."""
    try:
        return _REGISTRY[name].build(scale)
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; available: {', '.join(all_names())}"
        ) from None


def info(name: str) -> BenchmarkInfo:
    """Return metadata for a named benchmark."""
    return _REGISTRY[name]


def all_names() -> List[str]:
    """All registered benchmark names."""
    return sorted(_REGISTRY)


def dataset_names() -> List[str]:
    """The 18 designs forming the GCN training dataset (paper Section IV)."""
    return sorted(n for n, b in _REGISTRY.items() if b.kind in ("arithmetic", "control"))


def characterization_names() -> List[str]:
    """The OpenPiton designs used for characterization (Figures 2-3)."""
    return sorted(n for n, b in _REGISTRY.items() if b.kind == "openpiton")
