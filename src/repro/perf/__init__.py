"""Simulated hardware performance counters.

Substitutes the paper's ``linux perf`` instrumentation of real Xeon
hardware: a set-associative cache hierarchy, 2-bit/gshare branch
predictors, floating-point accounting, and an :class:`Instrument` facade
that the EDA engines report events into.
"""

from .branch import BranchStats, GSharePredictor, TwoBitPredictor
from .cache import (
    CacheConfig,
    CacheHierarchy,
    CacheLevel,
    L1_BYTES,
    LLC_PER_VCPU_BYTES,
    hierarchy_for_vcpus,
)
from .counters import PerfCounters
from .instrument import Instrument, NullInstrument, make_instrument

__all__ = [
    "BranchStats",
    "GSharePredictor",
    "TwoBitPredictor",
    "CacheConfig",
    "CacheHierarchy",
    "CacheLevel",
    "L1_BYTES",
    "LLC_PER_VCPU_BYTES",
    "hierarchy_for_vcpus",
    "PerfCounters",
    "Instrument",
    "NullInstrument",
    "make_instrument",
]
