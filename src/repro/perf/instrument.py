"""Instrumentation harness connecting EDA engines to the perf simulators.

An engine receives an :class:`Instrument` and reports, as it executes:

* memory accesses (synthetic byte addresses of the structures it touches),
* conditional branches (a site id plus the actual outcome),
* floating-point work (scalar and AVX-vector op counts),
* retired instruction estimates.

The instrument forwards memory streams to the cache hierarchy and branch
streams to the predictor, with optional striding (``sample_rate``) so large
designs stay cheap: sampled events are processed exactly and the *counts*
are scaled back up, which is precisely how hardware PMU sampling works.

:class:`NullInstrument` swallows everything at near-zero cost — used when
only runtimes are needed (e.g. GCN dataset generation).
"""

from __future__ import annotations

from dataclasses import fields
from typing import Optional, Sequence

from .branch import TwoBitPredictor
from .cache import CacheHierarchy, hierarchy_for_vcpus
from .counters import PerfCounters

__all__ = ["Instrument", "NullInstrument", "make_instrument"]


class NullInstrument:
    """No-op instrument; every report is discarded."""

    enabled = False
    #: Number of hardware threads the instrumented run is modelled on;
    #: engines may use this to interleave event streams the way concurrent
    #: workers would.
    concurrency = 1

    def mem(self, addresses: Sequence[int], reads_per_element: int = 1) -> None:
        """Ignore a memory-access stream."""

    def branch(self, site: int, outcomes: Sequence[bool], weight: int = 1) -> None:
        """Ignore a branch-outcome stream."""

    def flops(self, scalar: int = 0, avx: int = 0) -> None:
        """Ignore floating-point op counts."""

    def instructions(self, count: int) -> None:
        """Ignore an instruction-count estimate."""

    @property
    def counters(self) -> PerfCounters:
        """An empty counter set (nothing was recorded)."""
        return PerfCounters()

    # ------------------------------------------------------------------
    # Span fusion: snapshot counters around a region and tag the delta.
    # Implemented once here so instrumented and null runs produce spans
    # with *identical tag keys* (null deltas are all zero) — structural
    # trace comparisons must not depend on whether counters were on.
    # ------------------------------------------------------------------
    def snapshot(self) -> PerfCounters:
        """A copy of the counters as they stand right now."""
        current = self.counters
        copy = PerfCounters()
        for f in fields(PerfCounters):
            setattr(copy, f.name, getattr(current, f.name))
        return copy

    def span_delta(self, before: PerfCounters) -> dict:
        """Counter growth since ``before``, as span-taggable numbers.

        Returns the four headline counters the profiler fuses into
        frames: instructions, branches, memory accesses, and FP ops.
        """
        current = self.counters
        return {
            "instructions": current.instructions - before.instructions,
            "branches": current.branches - before.branches,
            "mem_accesses": current.mem_accesses - before.mem_accesses,
            "flops": current.fp_ops - before.fp_ops,
        }


class Instrument(NullInstrument):
    """Collects engine events into :class:`PerfCounters`.

    Parameters
    ----------
    cache:
        Cache hierarchy that memory streams are replayed through.
    predictor:
        Branch predictor that conditional outcomes are replayed through.
    sample_rate:
        Process every ``sample_rate``-th event and scale counters back up.
        ``1`` replays everything.
    """

    enabled = True

    def __init__(
        self,
        cache: Optional[CacheHierarchy] = None,
        predictor: Optional[TwoBitPredictor] = None,
        sample_rate: int = 1,
    ):
        if sample_rate < 1:
            raise ValueError("sample_rate must be >= 1")
        self.cache = cache if cache is not None else hierarchy_for_vcpus(1)
        self.predictor = predictor if predictor is not None else TwoBitPredictor()
        self.sample_rate = sample_rate
        self.concurrency = 1
        self._counters = PerfCounters()

    # ------------------------------------------------------------------
    def mem(self, addresses: Sequence[int], reads_per_element: int = 1) -> None:
        """Replay a stream of byte addresses through the cache hierarchy."""
        n = len(addresses)
        if n == 0:
            return
        stride = self.sample_rate
        sampled = addresses[::stride] if stride > 1 else addresses
        l1_hits_before = self.cache.l1.hits
        l1_misses_before = self.cache.l1.misses
        llc_hits_before = self.cache.llc.hits
        llc_misses_before = self.cache.llc.misses
        self.cache.access_stream(int(a) for a in sampled)
        scale = (n * reads_per_element) / max(1, len(sampled))
        c = self._counters
        c.mem_accesses += n * reads_per_element
        c.l1_hits += round((self.cache.l1.hits - l1_hits_before) * scale)
        c.l1_misses += round((self.cache.l1.misses - l1_misses_before) * scale)
        c.llc_hits += round((self.cache.llc.hits - llc_hits_before) * scale)
        c.llc_misses += round((self.cache.llc.misses - llc_misses_before) * scale)
        # A memory access retires at least one instruction.
        c.instructions += n * reads_per_element

    def branch(self, site: int, outcomes: Sequence[bool], weight: int = 1) -> None:
        """Replay conditional outcomes of one static branch site.

        ``weight`` scales the recorded branch count: the sequence stands for
        ``weight`` identical dynamic streams (e.g. one representative
        iteration of a loop executed ``weight`` times).
        """
        n = len(outcomes)
        if n == 0 or weight < 1:
            return
        stride = self.sample_rate
        sampled = outcomes[::stride] if stride > 1 else outcomes
        misses = self.predictor.process([site] * len(sampled), [bool(o) for o in sampled])
        scale = (n * weight) / len(sampled)
        c = self._counters
        c.branches += n * weight
        c.branch_misses += round(misses * scale)
        c.instructions += n * weight

    def flops(self, scalar: int = 0, avx: int = 0) -> None:
        """Record floating-point work.

        Scalar FP ops retire one instruction each; AVX ops retire one
        instruction per 4-wide vector.
        """
        c = self._counters
        c.fp_scalar_ops += scalar
        c.fp_avx_ops += avx
        c.instructions += scalar + avx // 4

    def instructions(self, count: int) -> None:
        """Record non-memory, non-branch retired instructions."""
        self._counters.instructions += count

    @property
    def counters(self) -> PerfCounters:
        """The counters accumulated so far."""
        return self._counters


def make_instrument(
    vcpus: int, sample_rate: int = 1, table_bits: int = 12
) -> Instrument:
    """Convenience constructor for a VM-shaped instrument.

    The cache hierarchy is sized by ``vcpus`` (see
    :func:`repro.perf.cache.hierarchy_for_vcpus`); the branch predictor
    is per-core so its size does not scale.
    """
    instrument = Instrument(
        cache=hierarchy_for_vcpus(vcpus),
        predictor=TwoBitPredictor(table_bits=table_bits),
        sample_rate=sample_rate,
    )
    instrument.concurrency = vcpus
    return instrument
