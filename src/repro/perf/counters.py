"""Hardware performance counter aggregation.

The paper instruments real runs with ``linux perf`` and reads hardware
counters (branch misses, cache misses, AVX floating-point operations).  Our
engines run real algorithms but on a simulated micro-architecture, so the
counters here are filled by :mod:`repro.perf.instrument` from the event
streams the algorithms emit.

The derived-rate definitions intentionally mirror ``perf stat``:

* ``branch_miss_rate``   = branch-misses / branches
* ``cache_miss_rate``    = cache-misses / cache-references, where
  cache-references are last-level-cache accesses (i.e. L1 misses) — this is
  what the stock ``cache-references``/``cache-misses`` events count and what
  makes the paper's "45% cache miss rate for placement" a sensible number.
* ``avx_share``          = AVX FP ops / total retired instructions.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

__all__ = ["PerfCounters"]


@dataclass
class PerfCounters:
    """Raw counter values accumulated over one job execution."""

    instructions: int = 0
    branches: int = 0
    branch_misses: int = 0
    mem_accesses: int = 0
    l1_hits: int = 0
    l1_misses: int = 0
    llc_hits: int = 0
    llc_misses: int = 0
    fp_scalar_ops: int = 0
    fp_avx_ops: int = 0

    # ------------------------------------------------------------------
    # Derived rates (the quantities plotted in Figure 2)
    # ------------------------------------------------------------------
    @property
    def branch_miss_rate(self) -> float:
        """Fraction of branches mispredicted (Figure 2-a)."""
        return self.branch_misses / self.branches if self.branches else 0.0

    @property
    def llc_accesses(self) -> int:
        """Last-level-cache references (= L1 misses), like ``cache-references``."""
        return self.llc_hits + self.llc_misses

    @property
    def cache_miss_rate(self) -> float:
        """``cache-misses / cache-references`` (Figure 2-b)."""
        return self.llc_misses / self.llc_accesses if self.llc_accesses else 0.0

    @property
    def l1_miss_rate(self) -> float:
        """L1 data-cache miss fraction."""
        total = self.l1_hits + self.l1_misses
        return self.l1_misses / total if total else 0.0

    @property
    def fp_ops(self) -> int:
        """All floating-point operations, scalar plus vector."""
        return self.fp_scalar_ops + self.fp_avx_ops

    @property
    def avx_instructions(self) -> int:
        """Retired AVX instructions, assuming 4-wide vectors."""
        return self.fp_avx_ops // 4

    @property
    def avx_share(self) -> float:
        """AVX instructions as a fraction of retired instructions (Figure 2-c)."""
        return self.avx_instructions / self.instructions if self.instructions else 0.0

    @property
    def fp_share(self) -> float:
        """All FP ops as a fraction of retired instructions."""
        return self.fp_ops / self.instructions if self.instructions else 0.0

    # ------------------------------------------------------------------
    def merge(self, other: "PerfCounters") -> "PerfCounters":
        """Return the element-wise sum of two counter sets."""
        merged = PerfCounters()
        for f in fields(PerfCounters):
            setattr(merged, f.name, getattr(self, f.name) + getattr(other, f.name))
        return merged

    def __add__(self, other: "PerfCounters") -> "PerfCounters":
        return self.merge(other)

    def as_dict(self) -> dict:
        """Raw counters plus derived rates, for reports."""
        out = {f.name: getattr(self, f.name) for f in fields(PerfCounters)}
        out.update(
            branch_miss_rate=self.branch_miss_rate,
            cache_miss_rate=self.cache_miss_rate,
            l1_miss_rate=self.l1_miss_rate,
            avx_share=self.avx_share,
            fp_share=self.fp_share,
        )
        return out

    def summary(self) -> str:
        """A compact, ``perf stat``-like report."""
        return (
            f"instructions      {self.instructions:>14,}\n"
            f"branches          {self.branches:>14,}\n"
            f"branch-misses     {self.branch_misses:>14,}  "
            f"({100 * self.branch_miss_rate:.2f}% of all branches)\n"
            f"cache-references  {self.llc_accesses:>14,}\n"
            f"cache-misses      {self.llc_misses:>14,}  "
            f"({100 * self.cache_miss_rate:.2f}% of all cache refs)\n"
            f"fp-scalar-ops     {self.fp_scalar_ops:>14,}\n"
            f"fp-avx-ops        {self.fp_avx_ops:>14,}  "
            f"({100 * self.avx_share:.2f}% of instructions)"
        )
