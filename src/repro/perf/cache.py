"""Set-associative cache hierarchy simulator.

Models a private L1 data cache backed by a shared last-level cache (LLC)
with true LRU replacement.  The EDA engines feed their memory-access
streams (synthetic addresses derived from the data structures they walk)
through a hierarchy sized to the provisioned VM: more vCPUs bring more
aggregate L1 and a larger LLC slice, which is exactly the mechanism the
paper invokes to explain placement's falling miss rate at 8 vCPUs.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, Tuple

__all__ = ["CacheConfig", "CacheLevel", "CacheHierarchy", "hierarchy_for_vcpus"]


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache level."""

    size_bytes: int
    line_bytes: int = 64
    associativity: int = 8

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.line_bytes <= 0 or self.associativity <= 0:
            raise ValueError("cache geometry values must be positive")
        lines = self.size_bytes // self.line_bytes
        if lines % self.associativity:
            raise ValueError(
                f"size {self.size_bytes}B / line {self.line_bytes}B is not divisible "
                f"into {self.associativity}-way sets"
            )

    @property
    def num_sets(self) -> int:
        return (self.size_bytes // self.line_bytes) // self.associativity


class CacheLevel:
    """One LRU set-associative cache level."""

    def __init__(self, config: CacheConfig):
        self.config = config
        self._sets = [OrderedDict() for _ in range(config.num_sets)]
        self.hits = 0
        self.misses = 0

    def access(self, address: int) -> bool:
        """Access one byte address; returns ``True`` on hit."""
        line = address // self.config.line_bytes
        index = line % self.config.num_sets
        cache_set = self._sets[index]
        if line in cache_set:
            cache_set.move_to_end(line)
            self.hits += 1
            return True
        self.misses += 1
        cache_set[line] = True
        if len(cache_set) > self.config.associativity:
            cache_set.popitem(last=False)
        return False

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0

    @property
    def miss_rate(self) -> float:
        total = self.hits + self.misses
        return self.misses / total if total else 0.0


class CacheHierarchy:
    """L1 backed by LLC; accesses that miss L1 go to the LLC."""

    def __init__(self, l1: CacheConfig, llc: CacheConfig):
        if llc.size_bytes < l1.size_bytes:
            raise ValueError("LLC must be at least as large as L1")
        self.l1 = CacheLevel(l1)
        self.llc = CacheLevel(llc)

    def access(self, address: int) -> Tuple[bool, bool]:
        """Access one address; returns ``(l1_hit, llc_hit)``.

        ``llc_hit`` is ``True`` whenever the request never reached the LLC
        (an L1 hit) or hit in the LLC.
        """
        if self.l1.access(address):
            return True, True
        return False, self.llc.access(address)

    def access_stream(self, addresses: Iterable[int]) -> None:
        """Process a whole address stream (counters accumulate internally)."""
        l1_access = self.l1.access
        llc_access = self.llc.access
        for addr in addresses:
            if not l1_access(addr):
                llc_access(addr)

    def reset_stats(self) -> None:
        self.l1.reset_stats()
        self.llc.reset_stats()

    @property
    def stats(self) -> dict:
        return {
            "l1_hits": self.l1.hits,
            "l1_misses": self.l1.misses,
            "llc_hits": self.llc.hits,
            "llc_misses": self.llc.misses,
        }


#: Cache provisioning modelled on the paper's Xeon E5-2680 testbed
#: (32KB L1D per core, ~2.5MB LLC slice per core), scaled down ~8x so that
#: the benchmark designs exercise capacity misses at laptop scale.  The L1
#: is per-core and does not grow with VM size; the LLC slice allocated to
#: the tenant grows with the number of vCPUs purchased — which is the
#: mechanism behind placement's miss rate dropping as VMs get wider.
L1_BYTES = 4 * 1024
LLC_PER_VCPU_BYTES = 32 * 1024


def hierarchy_for_vcpus(
    vcpus: int,
    l1_bytes: int = L1_BYTES,
    llc_per_vcpu: int = LLC_PER_VCPU_BYTES,
    line_bytes: int = 64,
) -> CacheHierarchy:
    """Build the cache hierarchy seen by a job on a ``vcpus``-wide VM."""
    if vcpus < 1:
        raise ValueError("vcpus must be >= 1")
    l1 = CacheConfig(size_bytes=l1_bytes, line_bytes=line_bytes, associativity=4)
    llc = CacheConfig(
        size_bytes=llc_per_vcpu * vcpus, line_bytes=line_bytes, associativity=8
    )
    return CacheHierarchy(l1, llc)
