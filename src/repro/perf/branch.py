"""Branch predictor simulators.

The characterization in Figure 2-a attributes routing's high branch-miss
rate to data-dependent graph-search control flow (maze expansion order,
rip-up-and-reroute retries).  We reproduce the mechanism: the routing engine
emits its *actual* conditional outcomes (was this neighbour cheaper? was the
cell blocked?) and the predictors below try to predict them, exactly like
the hardware would.

Two predictors are provided:

* :class:`TwoBitPredictor` — the classic per-PC 2-bit saturating counter
  table (the default, matching mainstream hardware behaviour).
* :class:`GSharePredictor` — global-history XOR indexing, for the
  sensitivity ablation.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

__all__ = ["TwoBitPredictor", "GSharePredictor", "BranchStats"]


class BranchStats:
    """Mutable hit/miss tally shared by the predictor implementations."""

    def __init__(self) -> None:
        self.branches = 0
        self.misses = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.branches if self.branches else 0.0


class TwoBitPredictor:
    """Per-PC table of 2-bit saturating counters.

    Counter states: 0, 1 predict not-taken; 2, 3 predict taken.  Counters
    start weakly taken (2), matching common hardware reset behaviour.
    """

    def __init__(self, table_bits: int = 12):
        if table_bits < 1 or table_bits > 24:
            raise ValueError("table_bits must be in [1, 24]")
        self.table_size = 1 << table_bits
        self._table = bytearray([2] * self.table_size)
        self.stats = BranchStats()

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        """Predict branch at ``pc``; train on the true outcome; return hit."""
        index = pc % self.table_size
        counter = self._table[index]
        predicted_taken = counter >= 2
        hit = predicted_taken == taken
        self.stats.branches += 1
        if not hit:
            self.stats.misses += 1
        if taken:
            if counter < 3:
                self._table[index] = counter + 1
        else:
            if counter > 0:
                self._table[index] = counter - 1
        return hit

    def process(self, pcs: Sequence[int], outcomes: Sequence[bool]) -> int:
        """Run a stream of (pc, outcome) pairs; return the miss count added."""
        if len(pcs) != len(outcomes):
            raise ValueError("pcs and outcomes must have equal length")
        before = self.stats.misses
        table = self._table
        size = self.table_size
        stats = self.stats
        for pc, taken in zip(pcs, outcomes):
            index = pc % size
            counter = table[index]
            if (counter >= 2) != bool(taken):
                stats.misses += 1
            if taken:
                if counter < 3:
                    table[index] = counter + 1
            elif counter > 0:
                table[index] = counter - 1
        stats.branches += len(pcs)
        return self.stats.misses - before

    @property
    def miss_rate(self) -> float:
        return self.stats.miss_rate


class GSharePredictor:
    """Gshare: 2-bit counters indexed by PC XOR global history."""

    def __init__(self, table_bits: int = 12, history_bits: int = 8):
        self.table_size = 1 << table_bits
        self.history_mask = (1 << history_bits) - 1
        self._table = bytearray([2] * self.table_size)
        self._history = 0
        self.stats = BranchStats()

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        index = (pc ^ self._history) % self.table_size
        counter = self._table[index]
        predicted_taken = counter >= 2
        hit = predicted_taken == taken
        self.stats.branches += 1
        if not hit:
            self.stats.misses += 1
        if taken:
            if counter < 3:
                self._table[index] = counter + 1
        else:
            if counter > 0:
                self._table[index] = counter - 1
        self._history = ((self._history << 1) | int(taken)) & self.history_mask
        return hit

    def process(self, pcs: Sequence[int], outcomes: Sequence[bool]) -> int:
        before = self.stats.misses
        for pc, taken in zip(pcs, outcomes):
            self.predict_and_update(pc, bool(taken))
        return self.stats.misses - before

    @property
    def miss_rate(self) -> float:
        return self.stats.miss_rate
