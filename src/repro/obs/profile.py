"""Deterministic profiler: per-frame self-time over the span tree.

The bench harness can say *that* a workload regressed; this module says
*which frame* regressed.  Three layers:

* :func:`build_profile` derives, from a finished span list, one
  :class:`FrameStat` per call-stack path — inclusive time, **self time**
  (span duration minus the duration of its direct children), call count,
  and the fused perf-counter tags (instructions / branches / memory /
  flops) the instrumented engines attach to their spans.  Under the
  tracer's tick-clock mode every quantity is an exact integer, so two
  same-seed runs produce byte-identical profiles; under the wall clock
  the same code paths yield real timings.
* Exports: :meth:`Profile.to_folded` emits Brendan-Gregg collapsed-stack
  text (``root;child;leaf <self-microseconds>``, sorted — pipe into any
  flamegraph tool), :func:`render_flame_html` a self-contained light/dark
  HTML flame view, and :meth:`Profile.to_dict` the ``repro-profile/1``
  JSON document.
* :func:`diff_profiles` aligns two profiles frame-by-frame and ranks
  regressions/improvements by self-time delta — the attribution layer
  ``repro profile --diff`` and the bench baseline gate report through.

For code that carries no spans at all there is a fallback
:class:`SamplingProfiler` built on ``sys.setprofile``: it shadows the
interpreter's call stack and accumulates per-path self time for every
Python call.  It is wall-clock only (the interpreter drives the event
stream, so tick-clock byte-stability is not promised) and is strictly an
exploration tool; the span profiler is the contractual one.
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .spans import Span

__all__ = [
    "PROFILE_SCHEMA",
    "FUSED_TAGS",
    "FrameStat",
    "Profile",
    "FrameDelta",
    "ProfileDiff",
    "build_profile",
    "diff_profiles",
    "load_profile",
    "parse_folded",
    "render_profile",
    "render_diff",
    "render_flame_html",
    "SamplingProfiler",
]

#: Schema tag stamped into every exported profile document.
PROFILE_SCHEMA = "repro-profile/1"

#: Span tags fused into frames when present and numeric — the counter
#: deltas the instrumented engines attach via ``Instrument.span_delta``.
FUSED_TAGS = ("instructions", "branches", "mem_accesses", "flops")


@dataclass
class FrameStat:
    """One call-stack path's aggregate: where its time actually went.

    ``path`` joins span names with ``/`` (matching the bench harness's
    timing paths); ``total`` is inclusive seconds, ``self_time`` excludes
    time spent in child spans.  ``counters`` holds the summed
    :data:`FUSED_TAGS` for spans on this path that carried them.
    """

    path: str
    calls: int = 0
    total: float = 0.0
    self_time: float = 0.0
    counters: Dict[str, float] = field(default_factory=dict)

    @property
    def name(self) -> str:
        """The leaf frame name (last path component)."""
        return self.path.rsplit("/", 1)[-1]

    def to_dict(self) -> dict:
        doc = {
            "calls": self.calls,
            "total": self.total,
            "self": self.self_time,
        }
        if self.counters:
            doc["counters"] = {
                k: self.counters[k] for k in sorted(self.counters)
            }
        return doc


@dataclass
class Profile:
    """A set of frames keyed by stack path, plus run metadata."""

    frames: Dict[str, FrameStat] = field(default_factory=dict)
    deterministic: bool = False
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def total_self(self) -> float:
        return sum(f.self_time for f in self.frames.values())

    def top(self, n: int = 10) -> List[FrameStat]:
        """The ``n`` hottest frames by self time (ties broken by path)."""
        ranked = sorted(
            self.frames.values(), key=lambda f: (-f.self_time, f.path)
        )
        return ranked[:n]

    def to_folded(self) -> str:
        """Brendan-Gregg collapsed stacks: ``a;b;c <self-microseconds>``.

        Values are integer microseconds of *self* time, lines sorted by
        path — under tick-clock mode the output is byte-identical across
        same-seed runs.  Ends with a newline iff non-empty.
        """
        lines = [
            f"{path.replace('/', ';')} {round(stat.self_time * 1e6)}"
            for path, stat in sorted(self.frames.items())
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def to_dict(self) -> dict:
        """The ``repro-profile/1`` JSON document."""
        return {
            "schema": PROFILE_SCHEMA,
            "deterministic": self.deterministic,
            "meta": {k: self.meta[k] for k in sorted(self.meta)},
            "frames": {
                path: self.frames[path].to_dict()
                for path in sorted(self.frames)
            },
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "Profile":
        if doc.get("schema") != PROFILE_SCHEMA:
            raise ValueError(
                f"profile schema mismatch: expected {PROFILE_SCHEMA!r}, "
                f"got {doc.get('schema')!r}"
            )
        profile = cls(
            deterministic=bool(doc.get("deterministic", False)),
            meta=dict(doc.get("meta", {})),
        )
        for path, raw in doc.get("frames", {}).items():
            profile.frames[path] = FrameStat(
                path=path,
                calls=int(raw.get("calls", 0)),
                total=float(raw.get("total", 0.0)),
                self_time=float(raw.get("self", 0.0)),
                counters=dict(raw.get("counters", {})),
            )
        return profile


def build_profile(
    spans: Sequence[Span],
    deterministic: bool = False,
    meta: Optional[Dict[str, object]] = None,
) -> Profile:
    """Aggregate finished spans into per-stack-path frames.

    Self time is span duration minus the summed duration of the span's
    *direct finished children* — exact under tick-clock mode because
    every open/close consumes one tick.  Repeated paths (per-epoch or
    per-iteration spans) accumulate into one frame.  Unfinished spans
    are skipped entirely: they have no duration and would poison their
    parent's self time.
    """
    by_id = {s.span_id: s for s in spans}
    child_time: Dict[int, float] = {}
    for span in spans:
        if not span.finished or span.parent_id is None:
            continue
        parent = by_id.get(span.parent_id)
        if parent is not None and parent.finished:
            child_time[parent.span_id] = (
                child_time.get(parent.span_id, 0.0) + span.duration
            )

    def stack_path(span: Span) -> str:
        parts = [span.name]
        parent_id = span.parent_id
        while parent_id is not None:
            parent = by_id[parent_id]
            parts.append(parent.name)
            parent_id = parent.parent_id
        return "/".join(reversed(parts))

    profile = Profile(deterministic=deterministic, meta=dict(meta or {}))
    for span in spans:
        if not span.finished:
            continue
        path = stack_path(span)
        frame = profile.frames.get(path)
        if frame is None:
            frame = profile.frames[path] = FrameStat(path=path)
        frame.calls += 1
        frame.total += span.duration
        frame.self_time += max(
            0.0, span.duration - child_time.get(span.span_id, 0.0)
        )
        for tag in FUSED_TAGS:
            value = span.tags.get(tag)
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                frame.counters[tag] = frame.counters.get(tag, 0.0) + value
    return profile


def parse_folded(text: str) -> Profile:
    """Parse collapsed-stack text back into a :class:`Profile`.

    Only self time survives the folded format (``total`` mirrors it and
    call counts are lost — recorded as 0), which is exactly enough for
    :func:`diff_profiles`.
    """
    profile = Profile()
    for number, raw in enumerate(text.splitlines(), start=1):
        raw = raw.strip()
        if not raw:
            continue
        stack, _, value = raw.rpartition(" ")
        if not stack:
            raise ValueError(f"folded line {number} has no stack: {raw!r}")
        try:
            micros = int(value)
        except ValueError:
            raise ValueError(
                f"folded line {number} has a non-integer value: {value!r}"
            ) from None
        path = stack.replace(";", "/")
        frame = profile.frames.get(path)
        if frame is None:
            frame = profile.frames[path] = FrameStat(path=path)
        seconds = micros / 1e6
        frame.self_time += seconds
        frame.total += seconds
    return profile


def load_profile(path: str) -> Profile:
    """Load a profile from a ``repro-profile/1`` JSON or folded file."""
    import json

    with open(path) as handle:
        text = handle.read()
    stripped = text.lstrip()
    if stripped.startswith("{"):
        return Profile.from_dict(json.loads(text))
    return parse_folded(text)


# ----------------------------------------------------------------------
# Diffing: frame-by-frame alignment and regression attribution
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FrameDelta:
    """One aligned frame's self-time change between two profiles."""

    path: str
    base_self: float
    cur_self: float
    base_calls: int
    cur_calls: int

    @property
    def delta(self) -> float:
        return self.cur_self - self.base_self

    @property
    def percent(self) -> float:
        """Delta as a percentage of the baseline (inf for a 0 baseline)."""
        if self.base_self > 0.0:
            return 100.0 * self.delta / self.base_self
        return float("inf") if self.delta > 0 else 0.0


@dataclass
class ProfileDiff:
    """Aligned diff of two profiles, ranked by |self-time delta|."""

    regressions: List[FrameDelta] = field(default_factory=list)
    improvements: List[FrameDelta] = field(default_factory=list)
    added: List[str] = field(default_factory=list)
    removed: List[str] = field(default_factory=list)

    @property
    def empty(self) -> bool:
        """No deltas beyond the guards and no frame set drift."""
        return not (
            self.regressions or self.improvements or self.added or self.removed
        )

    @property
    def top_regression(self) -> Optional[FrameDelta]:
        return self.regressions[0] if self.regressions else None


def diff_profiles(
    baseline: Profile,
    current: Profile,
    tolerance_pct: float = 0.0,
    abs_guard_seconds: float = 0.0,
) -> ProfileDiff:
    """Align ``current`` against ``baseline`` frame-by-frame.

    A frame counts as regressed (or improved) only when its self-time
    delta clears *both* guards: more than ``tolerance_pct`` percent of
    the baseline value and more than ``abs_guard_seconds`` in absolute
    terms.  With both guards at 0 (the deterministic tick-clock case)
    any non-zero delta is reported, so two byte-identical profiles diff
    to exactly nothing.
    """
    if tolerance_pct < 0 or abs_guard_seconds < 0:
        raise ValueError("tolerance_pct and abs_guard_seconds must be >= 0")
    diff = ProfileDiff()
    for path in sorted(set(baseline.frames) | set(current.frames)):
        base = baseline.frames.get(path)
        cur = current.frames.get(path)
        if base is None:
            diff.added.append(path)
            continue
        if cur is None:
            diff.removed.append(path)
            continue
        delta = FrameDelta(
            path=path,
            base_self=base.self_time,
            cur_self=cur.self_time,
            base_calls=base.calls,
            cur_calls=cur.calls,
        )
        magnitude = abs(delta.delta)
        if magnitude <= abs_guard_seconds:
            continue
        if magnitude <= base.self_time * tolerance_pct / 100.0:
            continue
        if delta.delta > 0:
            diff.regressions.append(delta)
        else:
            diff.improvements.append(delta)
    diff.regressions.sort(key=lambda d: (-d.delta, d.path))
    diff.improvements.sort(key=lambda d: (d.delta, d.path))
    return diff


# ----------------------------------------------------------------------
# Text rendering
# ----------------------------------------------------------------------
def _format_seconds(seconds: float) -> str:
    return f"{seconds * 1e3:,.3f}ms"


def render_profile(profile: Profile, top: int = 15) -> str:
    """Deterministic flat table of the hottest frames by self time."""
    total = profile.total_self
    lines = [
        f"{'self':>12} {'total':>12} {'calls':>7} {'self%':>6}  frame"
    ]
    for frame in profile.top(top):
        share = 100.0 * frame.self_time / total if total > 0 else 0.0
        lines.append(
            f"{_format_seconds(frame.self_time):>12} "
            f"{_format_seconds(frame.total):>12} "
            f"{frame.calls:>7} {share:>5.1f}%  {frame.path}"
        )
    shown = min(top, len(profile.frames))
    lines.append(
        f"{len(profile.frames)} frames, "
        f"{_format_seconds(total)} total self time "
        f"(top {shown} shown)"
    )
    return "\n".join(lines)


def render_diff(diff: ProfileDiff, top: int = 10) -> str:
    """Deterministic table of ranked regressions and improvements."""
    if diff.empty:
        return "profile diff: no self-time deltas beyond the guards"
    lines: List[str] = []
    if diff.regressions:
        lines.append(f"regressions ({len(diff.regressions)}):")
        lines.append(
            f"  {'delta':>12} {'base':>12} {'current':>12} {'pct':>8}  frame"
        )
        for d in diff.regressions[:top]:
            pct = "new" if d.base_self <= 0 else f"{d.percent:+.1f}%"
            lines.append(
                f"  {'+' + _format_seconds(d.delta):>12} "
                f"{_format_seconds(d.base_self):>12} "
                f"{_format_seconds(d.cur_self):>12} {pct:>8}  {d.path}"
            )
    if diff.improvements:
        lines.append(f"improvements ({len(diff.improvements)}):")
        for d in diff.improvements[:top]:
            lines.append(
                f"  {'-' + _format_seconds(-d.delta):>12} "
                f"{_format_seconds(d.base_self):>12} "
                f"{_format_seconds(d.cur_self):>12} "
                f"{d.percent:>+7.1f}%  {d.path}"
            )
    for label, paths in (("added", diff.added), ("removed", diff.removed)):
        if paths:
            lines.append(f"{label} frames ({len(paths)}):")
            lines.extend(f"  {p}" for p in paths[:top])
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Flame view (self-contained HTML, light/dark via prefers-color-scheme)
# ----------------------------------------------------------------------
_FLAME_STYLE = """
:root { color-scheme: light dark; }
.viz-root {
  --surface-1: #fcfcfb; --text-primary: #0b0b0b; --text-secondary: #52514e;
  --border: #e4e3df;
  background: var(--surface-1); color: var(--text-primary);
  font: 13px/1.4 system-ui, sans-serif; margin: 0; padding: 24px;
}
@media (prefers-color-scheme: dark) {
  .viz-root {
    --surface-1: #1a1a19; --text-primary: #ffffff;
    --text-secondary: #c3c2b7; --border: #3a3a38;
  }
}
.viz-root h1 { font-size: 18px; margin: 0 0 4px; }
.viz-root .sub { color: var(--text-secondary); margin: 0 0 16px; }
.flame { max-width: 1100px; }
.frame { box-sizing: border-box; }
.frame > .bar {
  overflow: hidden; white-space: nowrap; text-overflow: ellipsis;
  border: 1px solid var(--surface-1); border-radius: 2px;
  padding: 1px 4px; color: #1d1500;
}
.frame > .kids { display: flex; align-items: flex-start; }
"""

#: Warm categorical ramp cycled by depth; dark text stays readable on all.
_FLAME_COLORS = ("#fcbf49", "#f79d65", "#f4a261", "#e9c46a", "#f6bd60")


def _flame_tree(profile: Profile) -> List[dict]:
    """Nest flat paths into root nodes sized by inclusive time.

    A node's inclusive value is its own ``total`` when present, else the
    sum of its children (paths can be sparse when parent spans carried
    no frame of their own).
    """
    roots: List[dict] = []
    nodes: Dict[str, dict] = {}
    for path in sorted(profile.frames):
        frame = profile.frames[path]
        parts = path.split("/")
        parent: Optional[dict] = None
        for depth in range(len(parts)):
            key = "/".join(parts[: depth + 1])
            node = nodes.get(key)
            if node is None:
                node = nodes[key] = {
                    "name": parts[depth],
                    "total": 0.0,
                    "self": 0.0,
                    "calls": 0,
                    "children": [],
                }
                (parent["children"] if parent else roots).append(node)
            parent = node
        parent["total"] += frame.total
        parent["self"] += frame.self_time
        parent["calls"] += frame.calls

    def fill(node: dict) -> float:
        child_sum = sum(fill(c) for c in node["children"])
        node["total"] = max(node["total"], child_sum)
        return node["total"]

    for root in roots:
        fill(root)
    return roots


def _escape(text: object) -> str:
    return (
        str(text)
        .replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
        .replace('"', "&quot;")
    )


def render_flame_html(profile: Profile, title: str = "repro profile") -> str:
    """Self-contained flame view: nested width-proportional bars.

    No JavaScript, no external assets — widths are flex-basis
    percentages of the parent's inclusive time, tooltips are native
    ``title`` attributes, and colors cycle a warm ramp by depth that
    reads in both light and dark mode.
    """
    roots = _flame_tree(profile)
    grand_total = sum(r["total"] for r in roots) or 1.0

    def node_html(node: dict, depth: int, parent_total: float) -> str:
        share = 100.0 * node["total"] / parent_total if parent_total else 0.0
        color = _FLAME_COLORS[depth % len(_FLAME_COLORS)]
        tip = (
            f"{node['name']}: total {node['total'] * 1e3:.3f}ms, "
            f"self {node['self'] * 1e3:.3f}ms, calls {node['calls']}"
        )
        kids = "".join(
            node_html(child, depth + 1, node["total"])
            for child in node["children"]
        )
        return (
            f'<div class="frame" style="flex: 0 0 {share:.4f}%; '
            f'max-width: {share:.4f}%;" title="{_escape(tip)}">'
            f'<div class="bar" style="background: {color};">'
            f"{_escape(node['name'])}</div>"
            + (f'<div class="kids">{kids}</div>' if kids else "")
            + "</div>"
        )

    body = "".join(node_html(root, 0, grand_total) for root in roots)
    clock = "tick clock (deterministic)" if profile.deterministic else "wall clock"
    return "\n".join(
        [
            "<!DOCTYPE html>",
            '<html><head><meta charset="utf-8">',
            f"<title>{_escape(title)}</title>",
            f"<style>{_FLAME_STYLE}</style>",
            '</head><body class="viz-root">',
            f"<h1>{_escape(title)}</h1>",
            f'<p class="sub">{len(profile.frames)} frames, '
            f"{profile.total_self * 1e3:.3f}ms self time, {clock}</p>",
            f'<div class="flame" style="display:flex;">{body}</div>',
            "</body></html>",
        ]
    )


# ----------------------------------------------------------------------
# sys.setprofile fallback for un-instrumented code
# ----------------------------------------------------------------------
class SamplingProfiler:
    """Shadow-stack profiler over the interpreter's call events.

    Tracks every Python ``call``/``return`` seen by ``sys.setprofile``
    while the context is active and accumulates per-stack-path self
    time, exactly like the span profiler but at function granularity.
    Frames are named ``file.py:function``.  C-function events are
    ignored (they are leaves whose cost lands in their caller's self
    time, the convention ``cProfile``'s callers view uses too).

    Wall-clock only: event ordering is interpreter-driven, so this mode
    does not promise byte-identical output.  Use spans for contracts.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None):
        if clock is None:
            import time

            clock = time.perf_counter
        self.clock = clock
        self.profile = Profile(meta={"mode": "sampling"})
        # Shadow stack entries: [path, start, child_time].
        self._stack: List[List[object]] = []
        self._previous: Optional[Callable] = None

    def _frame_name(self, frame) -> str:
        code = frame.f_code
        return f"{os.path.basename(code.co_filename)}:{code.co_name}"

    def _event(self, frame, event: str, arg) -> None:
        if event == "call":
            name = self._frame_name(frame)
            parent = self._stack[-1][0] if self._stack else ""
            path = f"{parent}/{name}" if parent else name
            self._stack.append([path, self.clock(), 0.0])
        elif event == "return" and self._stack:
            path, start, child_time = self._stack.pop()
            duration = self.clock() - start
            stat = self.profile.frames.get(path)
            if stat is None:
                stat = self.profile.frames[path] = FrameStat(path=path)
            stat.calls += 1
            stat.total += duration
            stat.self_time += max(0.0, duration - child_time)
            if self._stack:
                self._stack[-1][2] += duration

    def __enter__(self) -> "SamplingProfiler":
        self._previous = sys.getprofile()
        sys.setprofile(self._event)
        return self

    def __exit__(self, *exc) -> bool:
        sys.setprofile(self._previous)
        # Frames still open (callers of __enter__) never saw their call
        # event complete inside the window; drop them.
        self._stack.clear()
        return False
