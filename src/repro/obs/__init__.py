"""Observability: hierarchical spans, metrics, exporters, bench harness.

The measurement substrate for the reproduction — the paper's whole
pipeline is built on *measuring* EDA workloads, and this package applies
the same discipline to our own hot paths:

* :mod:`repro.obs.spans`   — hierarchical wall-clock spans (thread-local
  stack, monotonic clock, deterministic mode for byte-stable traces),
* :mod:`repro.obs.metrics` — process-local counters / gauges / log-scale
  histograms with snapshot, reset and merge,
* :mod:`repro.obs.export`  — JSON, Chrome trace-event, and text-tree
  exporters,
* :mod:`repro.obs.bench`   — the ``repro bench`` fixed-seed workload
  matrix and ``BENCH_<rev>.json`` regression comparison.

The global tracer starts **disabled** (instrumented code pays one
attribute check), the global metric registry is always on (dict-lookup
cheap).  :func:`scoped` swaps both for the duration of a ``with`` block,
which is how the CLI commands, the bench harness, and the tests isolate
their telemetry.
"""

from contextlib import contextmanager
from typing import Optional

from .metrics import (
    MAX_BIN,
    MIN_BIN,
    ZERO_BIN,
    Counter,
    Gauge,
    Histogram,
    HistogramSnapshot,
    MetricsRegistry,
    MetricsSnapshot,
    bin_bounds,
    get_metrics,
    histogram_bin,
    merge_snapshots,
    set_metrics,
)
from .spans import (
    NULL_SPAN,
    Span,
    SpanEvent,
    TickClock,
    Tracer,
    get_tracer,
    set_tracer,
    traced,
    well_nested_violations,
)

__all__ = [
    "MAX_BIN",
    "MIN_BIN",
    "ZERO_BIN",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NULL_SPAN",
    "Span",
    "SpanEvent",
    "TickClock",
    "Tracer",
    "bin_bounds",
    "get_metrics",
    "get_tracer",
    "histogram_bin",
    "merge_snapshots",
    "scoped",
    "set_metrics",
    "set_tracer",
    "traced",
    "well_nested_violations",
]


@contextmanager
def scoped(
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
):
    """Temporarily install a tracer and/or metric registry as the globals.

    Restores the previous globals on exit even if the body raises; yields
    ``(tracer, metrics)`` as actually installed.
    """
    prev_tracer = set_tracer(tracer) if tracer is not None else None
    prev_metrics = set_metrics(metrics) if metrics is not None else None
    try:
        yield get_tracer(), get_metrics()
    finally:
        if tracer is not None:
            set_tracer(prev_tracer)
        if metrics is not None:
            set_metrics(prev_metrics)
