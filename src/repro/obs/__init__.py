"""Observability: hierarchical spans, metrics, exporters, bench harness.

The measurement substrate for the reproduction — the paper's whole
pipeline is built on *measuring* EDA workloads, and this package applies
the same discipline to our own hot paths:

* :mod:`repro.obs.spans`   — hierarchical wall-clock spans (thread-local
  stack, monotonic clock, deterministic mode for byte-stable traces),
* :mod:`repro.obs.metrics` — process-local counters / gauges / log-scale
  histograms with snapshot, reset and merge,
* :mod:`repro.obs.export`  — JSON, Chrome trace-event, and text-tree
  exporters,
* :mod:`repro.obs.bench`   — the ``repro bench`` fixed-seed workload
  matrix and ``BENCH_<rev>.json`` regression comparison,
* :mod:`repro.obs.log`     — structured span-correlated log records, the
  bounded ring-buffer flight recorder, and replayable crash dumps,
* :mod:`repro.obs.profile` — the deterministic self-time profiler over
  the span tree, folded-stack/flame exports, and the profile differ,
* :mod:`repro.obs.store`   — the append-only multi-run telemetry store
  (JSONL under ``benchmarks/runs/``) with series/percentile queries,
* :mod:`repro.obs.report`  — the ``repro report`` terminal/HTML
  regression dashboard (MAD outliers + deterministic-drift checks),
* :mod:`repro.obs.attrib`  — exact critical-path latency attribution
  over stitched per-job traces (bucket sums equal end-to-end durations
  bit-for-bit under tick clocks),
* :mod:`repro.obs.slo`     — declarative SLO specs (deadline hit rate,
  percentile latency, cost budgets) evaluated deterministically over
  the run store, with error-budget burn windows.

The global tracer and logger start **disabled** (instrumented code pays
one attribute check), the global metric registry is always on
(dict-lookup cheap).  :func:`scoped` swaps any of the three for the
duration of a ``with`` block, which is how the CLI commands, the bench
harness, and the tests isolate their telemetry.
"""

from contextlib import contextmanager
from typing import Optional

from .attrib import (
    BUCKETS,
    Attribution,
    AttributionError,
    attribute_job,
    attribute_session,
    attribution_violations,
)
from .log import (
    CRASH_SCHEMA,
    LogRecord,
    Logger,
    build_crash_report,
    crash_scope,
    default_crash_dir,
    get_logger,
    set_logger,
    write_crash_report,
)
from .export import OpenMetricsError, parse_openmetrics, to_openmetrics
from .metrics import (
    MAX_BIN,
    MIN_BIN,
    ZERO_BIN,
    Counter,
    Gauge,
    Histogram,
    HistogramSnapshot,
    LabelError,
    MetricsRegistry,
    MetricsSnapshot,
    bin_bounds,
    get_metrics,
    histogram_bin,
    labeled_name,
    merge_snapshots,
    parse_labeled_name,
    set_metrics,
    snapshot_from_dict,
)
from .profile import (
    PROFILE_SCHEMA,
    FrameStat,
    Profile,
    ProfileDiff,
    SamplingProfiler,
    build_profile,
    diff_profiles,
    load_profile,
    parse_folded,
    render_diff,
    render_flame_html,
    render_profile,
)
from .slo import (
    SLO_SCHEMA,
    ObjectiveResult,
    SLOError,
    SLOReport,
    SLOSpec,
    SLOSpecError,
    burn_sparkline,
    evaluate_slo,
    load_slo_spec,
    parse_slo_spec,
)
from .spans import (
    NULL_SPAN,
    Span,
    SpanEvent,
    TickClock,
    Tracer,
    get_tracer,
    mint_trace_id,
    set_tracer,
    traced,
    well_nested_violations,
)

__all__ = [
    "BUCKETS",
    "CRASH_SCHEMA",
    "MAX_BIN",
    "MIN_BIN",
    "PROFILE_SCHEMA",
    "SLO_SCHEMA",
    "ZERO_BIN",
    "Attribution",
    "AttributionError",
    "Counter",
    "FrameStat",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "LabelError",
    "LogRecord",
    "Logger",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NULL_SPAN",
    "ObjectiveResult",
    "OpenMetricsError",
    "Profile",
    "ProfileDiff",
    "SLOError",
    "SLOReport",
    "SLOSpec",
    "SLOSpecError",
    "SamplingProfiler",
    "Span",
    "SpanEvent",
    "TickClock",
    "Tracer",
    "attribute_job",
    "attribute_session",
    "attribution_violations",
    "bin_bounds",
    "build_crash_report",
    "build_profile",
    "burn_sparkline",
    "diff_profiles",
    "evaluate_slo",
    "load_profile",
    "load_slo_spec",
    "parse_folded",
    "parse_openmetrics",
    "parse_slo_spec",
    "render_diff",
    "render_flame_html",
    "render_profile",
    "crash_scope",
    "default_crash_dir",
    "get_logger",
    "get_metrics",
    "get_tracer",
    "histogram_bin",
    "labeled_name",
    "merge_snapshots",
    "mint_trace_id",
    "parse_labeled_name",
    "scoped",
    "set_logger",
    "set_metrics",
    "set_tracer",
    "snapshot_from_dict",
    "to_openmetrics",
    "traced",
    "well_nested_violations",
    "write_crash_report",
]


@contextmanager
def scoped(
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
    log: Optional[Logger] = None,
):
    """Temporarily install tracer/metric-registry/logger globals.

    Restores the previous globals on exit even if the body raises; yields
    ``(tracer, metrics)`` as actually installed (the logger is reachable
    via :func:`get_logger`).
    """
    prev_tracer = set_tracer(tracer) if tracer is not None else None
    prev_metrics = set_metrics(metrics) if metrics is not None else None
    prev_logger = set_logger(log) if log is not None else None
    try:
        yield get_tracer(), get_metrics()
    finally:
        if tracer is not None:
            set_tracer(prev_tracer)
        if metrics is not None:
            set_metrics(prev_metrics)
        if log is not None:
            set_logger(prev_logger)
