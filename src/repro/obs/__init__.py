"""Observability: hierarchical spans, metrics, exporters, bench harness.

The measurement substrate for the reproduction — the paper's whole
pipeline is built on *measuring* EDA workloads, and this package applies
the same discipline to our own hot paths:

* :mod:`repro.obs.spans`   — hierarchical wall-clock spans (thread-local
  stack, monotonic clock, deterministic mode for byte-stable traces),
* :mod:`repro.obs.metrics` — process-local counters / gauges / log-scale
  histograms with snapshot, reset and merge,
* :mod:`repro.obs.export`  — JSON, Chrome trace-event, and text-tree
  exporters,
* :mod:`repro.obs.bench`   — the ``repro bench`` fixed-seed workload
  matrix and ``BENCH_<rev>.json`` regression comparison,
* :mod:`repro.obs.log`     — structured span-correlated log records, the
  bounded ring-buffer flight recorder, and replayable crash dumps,
* :mod:`repro.obs.profile` — the deterministic self-time profiler over
  the span tree, folded-stack/flame exports, and the profile differ,
* :mod:`repro.obs.store`   — the append-only multi-run telemetry store
  (JSONL under ``benchmarks/runs/``) with series/percentile queries,
* :mod:`repro.obs.report`  — the ``repro report`` terminal/HTML
  regression dashboard (MAD outliers + deterministic-drift checks).

The global tracer and logger start **disabled** (instrumented code pays
one attribute check), the global metric registry is always on
(dict-lookup cheap).  :func:`scoped` swaps any of the three for the
duration of a ``with`` block, which is how the CLI commands, the bench
harness, and the tests isolate their telemetry.
"""

from contextlib import contextmanager
from typing import Optional

from .log import (
    CRASH_SCHEMA,
    LogRecord,
    Logger,
    build_crash_report,
    crash_scope,
    default_crash_dir,
    get_logger,
    set_logger,
    write_crash_report,
)
from .metrics import (
    MAX_BIN,
    MIN_BIN,
    ZERO_BIN,
    Counter,
    Gauge,
    Histogram,
    HistogramSnapshot,
    MetricsRegistry,
    MetricsSnapshot,
    bin_bounds,
    get_metrics,
    histogram_bin,
    merge_snapshots,
    set_metrics,
    snapshot_from_dict,
)
from .profile import (
    PROFILE_SCHEMA,
    FrameStat,
    Profile,
    ProfileDiff,
    SamplingProfiler,
    build_profile,
    diff_profiles,
    load_profile,
    parse_folded,
    render_diff,
    render_flame_html,
    render_profile,
)
from .spans import (
    NULL_SPAN,
    Span,
    SpanEvent,
    TickClock,
    Tracer,
    get_tracer,
    set_tracer,
    traced,
    well_nested_violations,
)

__all__ = [
    "CRASH_SCHEMA",
    "MAX_BIN",
    "MIN_BIN",
    "PROFILE_SCHEMA",
    "ZERO_BIN",
    "Counter",
    "FrameStat",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "LogRecord",
    "Logger",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NULL_SPAN",
    "Profile",
    "ProfileDiff",
    "SamplingProfiler",
    "Span",
    "SpanEvent",
    "TickClock",
    "Tracer",
    "bin_bounds",
    "build_crash_report",
    "build_profile",
    "diff_profiles",
    "load_profile",
    "parse_folded",
    "render_diff",
    "render_flame_html",
    "render_profile",
    "crash_scope",
    "default_crash_dir",
    "get_logger",
    "get_metrics",
    "get_tracer",
    "histogram_bin",
    "merge_snapshots",
    "scoped",
    "set_logger",
    "set_metrics",
    "set_tracer",
    "snapshot_from_dict",
    "traced",
    "well_nested_violations",
    "write_crash_report",
]


@contextmanager
def scoped(
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
    log: Optional[Logger] = None,
):
    """Temporarily install tracer/metric-registry/logger globals.

    Restores the previous globals on exit even if the body raises; yields
    ``(tracer, metrics)`` as actually installed (the logger is reachable
    via :func:`get_logger`).
    """
    prev_tracer = set_tracer(tracer) if tracer is not None else None
    prev_metrics = set_metrics(metrics) if metrics is not None else None
    prev_logger = set_logger(log) if log is not None else None
    try:
        yield get_tracer(), get_metrics()
    finally:
        if tracer is not None:
            set_tracer(prev_tracer)
        if metrics is not None:
            set_metrics(prev_metrics)
        if log is not None:
            set_logger(prev_logger)
