"""Perf-regression bench harness: a fixed-seed workload matrix.

``repro bench`` runs a small deterministic slice of every hot path —
the four-stage flow (with modelled runtimes recorded at 1/2/4/8 vCPUs),
one fault-injected executor run, and a short GCN fit — under an enabled
tracer and a fresh metric registry, then writes a ``BENCH_<rev>.json``
document (schema :data:`BENCH_SCHEMA`):

* ``structure`` — the timing-free span tree (byte-stable for one seed),
* ``metrics``   — the metric snapshot (byte-stable for one seed),
* ``timings``   — wall-clock seconds per span path (machine-dependent),
* ``workloads`` — headline wall-clock per workload,
* ``profile``   — per-span-path self-time summary (``calls`` byte-stable
  for one seed; ``total``/``self`` seconds machine-dependent).

Determinism contract: two runs with the same seed produce identical
``structure``, ``metrics``, and profile call counts; only the wall-clock
quantities (``timings``/``workloads``/profile seconds) vary.
:func:`compare_bench` diffs the timings against a baseline file with a
percentage tolerance — that comparison is what CI gates on — and, when
both documents carry profiles, names the span path whose *self time*
regressed the most, so the gate blames a frame instead of a total.
"""

from __future__ import annotations

import json
import os
import subprocess
import time
from typing import Dict, List, Optional, Tuple

from ..cloud.executor import ExecutionPolicy, PlanExecutor
from ..cloud.faults import FaultProfile
from ..cloud.instance import InstanceFamily, VMConfig
from ..cloud.provisioner import DeploymentPlan
from ..eda.flow import FlowRunner
from ..eda.job import EDAStage
from ..fleet import FleetPlanner, synthetic_fleet
from ..gnn.dataset import RuntimeSample
from ..gnn.model import RuntimeGCN
from ..gnn.training import TrainConfig, train
from ..netlist import benchmarks
from ..netlist.stargraph import aig_to_graph
from . import scoped
from .export import structural_tree
from .log import Logger
from .metrics import MetricsRegistry
from .profile import build_profile
from .spans import Span, Tracer

__all__ = [
    "BENCH_SCHEMA",
    "KneePoint",
    "detect_knee",
    "run_bench",
    "write_bench",
    "bench_filename",
    "git_rev",
    "validate_bench",
    "compare_bench",
]

#: Schema tag stamped into every ``BENCH_*.json``.
BENCH_SCHEMA = "repro-bench/1"

#: vCPU grid the flow's modelled runtimes are recorded at (paper's grid).
VCPU_LEVELS = (1, 2, 4, 8)

#: Ignore timing deltas below this many seconds (noise floor).
ABS_GUARD_SECONDS = 0.02


class KneePoint:
    """The detected knee of a scaling curve (see :func:`detect_knee`)."""

    __slots__ = ("index", "x", "y", "gain")

    def __init__(self, index: int, x: float, y: float, gain: float):
        self.index = index
        self.x = x
        self.y = y
        self.gain = gain

    def to_dict(self) -> dict:
        return {"index": self.index, "x": self.x, "y": self.y,
                "gain": self.gain}

    def __repr__(self) -> str:
        return (
            f"KneePoint(index={self.index}, x={self.x}, y={self.y}, "
            f"gain={self.gain:.4f})"
        )


def detect_knee(
    xs, ys, min_gain: float = 0.05
) -> Optional[KneePoint]:
    """Locate the knee of an increasing, saturating curve (kneedle-lite).

    Both axes are min-max normalized to ``[0, 1]``; the knee is the point
    maximizing the difference curve ``y_n - x_n`` — where the curve pulls
    furthest above the straight diagonal, i.e. where returns start
    diminishing.  Shared by the ``repro bench`` flow-scaling gauges and
    the service concurrency sweep so both gates agree on what a knee is.

    Returns ``None`` (never raises) when no knee exists: fewer than three
    points (a single concurrency point must not crash the sweep), a flat
    or degenerate curve, or a maximum gain below ``min_gain`` (an
    essentially linear curve has no knee worth reporting).
    """
    if len(xs) != len(ys):
        raise ValueError(f"xs/ys length mismatch: {len(xs)} vs {len(ys)}")
    if len(xs) < 3:
        return None
    x0, x1 = min(xs), max(xs)
    y0, y1 = min(ys), max(ys)
    if x1 <= x0 or y1 <= y0:
        return None  # flat curve (or all-equal xs): no knee
    best: Optional[KneePoint] = None
    for i, (x, y) in enumerate(zip(xs, ys)):
        xn = (x - x0) / (x1 - x0)
        yn = (y - y0) / (y1 - y0)
        gain = yn - xn
        if gain >= min_gain and (best is None or gain > best.gain):
            best = KneePoint(index=i, x=float(x), y=float(y), gain=gain)
    return best


def git_rev(default: str = "dev") -> str:
    """Short git revision of the working tree, or ``default``."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
    except (OSError, subprocess.TimeoutExpired):
        return default
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else default


def _span_paths(spans: List[Span]) -> Dict[str, float]:
    """Flatten finished spans to ``root/child/...`` path -> duration."""
    by_id = {s.span_id: s for s in spans}
    paths: Dict[str, float] = {}
    for span in spans:
        if not span.finished:
            continue
        parts = [span.name]
        parent_id = span.parent_id
        while parent_id is not None:
            parent = by_id[parent_id]
            parts.append(parent.name)
            parent_id = parent.parent_id
        path = "/".join(reversed(parts))
        # Repeated paths (e.g. per-epoch spans) accumulate.
        paths[path] = paths.get(path, 0.0) + span.duration
    return paths


def _bench_plan(runtimes: Dict[EDAStage, float]) -> DeploymentPlan:
    """A fixed mixed spot/on-demand plan over the measured flow runtimes."""
    spot = VMConfig(
        name="gp.4x.spot",
        family=InstanceFamily.GENERAL_PURPOSE,
        vcpus=4,
        memory_gb=16.0,
        price_per_hour=0.06,
    )
    on_demand = VMConfig(
        name="gp.4x",
        family=InstanceFamily.GENERAL_PURPOSE,
        vcpus=4,
        memory_gb=16.0,
        price_per_hour=0.20,
    )
    plan = DeploymentPlan(design="bench")
    for stage in EDAStage.ordered():
        vm = spot if stage in (EDAStage.SYNTHESIS, EDAStage.ROUTING) else on_demand
        plan.add(stage, vm, max(1.0, runtimes[stage]))
    return plan


def run_bench(
    seed: int = 0,
    design: str = "ctrl",
    scale: float = 0.3,
    epochs: int = 3,
    rev: Optional[str] = None,
) -> dict:
    """Run the fixed workload matrix; returns the bench document."""
    tracer = Tracer(enabled=True)
    registry = MetricsRegistry()
    logger = Logger()
    with scoped(tracer=tracer, metrics=registry, log=logger):
        workloads: Dict[str, float] = {}

        # -- workload 1: the four-stage flow at 1/2/4/8 vCPUs ------------
        with tracer.span("bench.flow", design=design, seed=seed) as sp:
            runner = FlowRunner(seed=seed)
            aig = benchmarks.build(design, scale)
            flow = runner.run(aig, seed=seed)
            for stage, result in flow.stages.items():
                for vcpus in VCPU_LEVELS:
                    registry.gauge(
                        f"flow.runtime_seconds.{stage.value}.{vcpus}v"
                    ).set(result.runtime(vcpus))
                # Where adding vCPUs stops paying for this stage — same
                # knee definition the service concurrency sweep uses.
                speedups = [
                    result.runtime(VCPU_LEVELS[0]) / result.runtime(v)
                    for v in VCPU_LEVELS
                ]
                knee = detect_knee(VCPU_LEVELS, speedups)
                if knee is not None:
                    registry.gauge(
                        f"bench.flow.scaling_knee_vcpus.{stage.value}"
                    ).set(knee.x)
        workloads["flow"] = sp.duration

        # -- workload 2: one fault-injected executor run ------------------
        runtimes = {s: r.runtime(4) for s, r in flow.stages.items()}
        plan = _bench_plan(runtimes)
        with tracer.span("bench.executor", seed=seed) as sp:
            profile = FaultProfile.calm()
            executor = PlanExecutor(profile=profile, policy=ExecutionPolicy())
            outcome = executor.execute(
                plan, deadline_seconds=plan.total_runtime * 4, seed=seed
            )
            registry.gauge("bench.executor.total_cost").set(outcome.total_cost)
            registry.gauge("bench.executor.sim_seconds").set(outcome.total_time)
        workloads["executor"] = sp.duration

        # -- workload 3: a short GCN fit ----------------------------------
        with tracer.span("bench.gnn", seed=seed, epochs=epochs) as sp:
            synth = flow.stages[EDAStage.SYNTHESIS]
            sample = RuntimeSample(
                graph=aig_to_graph(aig),
                runtimes=[synth.runtime(v) for v in VCPU_LEVELS],
                design=design,
            )
            model = RuntimeGCN(
                feature_dim=sample.graph.feature_dim,
                hidden1=16,
                hidden2=8,
                fc_units=8,
                seed=seed,
            )
            fit = train(
                model,
                [sample],
                TrainConfig(epochs=epochs, shuffle_seed=seed),
            )
            registry.gauge("bench.gnn.final_loss").set(fit.final_loss)
        workloads["gnn"] = sp.duration

        # -- workload 4: fleet-scale approximate planning -----------------
        # Fleet *generation* stays outside the timed region: the bench
        # measures the planner's flows/sec, not the synthetic generator.
        fleet_flows = max(1000, int(200_000 * scale))
        menus, flows = synthetic_fleet(
            seed=seed, flows=fleet_flows, menus=40, deadline_buckets=12
        )
        planner = FleetPlanner(mode="approx")
        for menu_id in sorted(menus):
            planner.register_menu(menu_id, menus[menu_id])
        with tracer.span("bench.fleet", seed=seed, flows=fleet_flows) as sp:
            t0 = time.perf_counter()
            fleet_plan = planner.plan(flows)
            plan_seconds = time.perf_counter() - t0
            stats = fleet_plan.stats
            registry.gauge("bench.fleet.planned_flows").set(stats.flows)
            registry.gauge("bench.fleet.feasible_flows").set(
                stats.feasible_flows
            )
            registry.gauge("bench.fleet.groups").set(stats.groups)
            registry.gauge("bench.fleet.pruned_options").set(
                stats.pruned_options
            )
            registry.gauge("bench.fleet.total_cost").set(fleet_plan.total_cost)
            registry.gauge("bench.fleet.max_certified_gap").set(
                fleet_plan.max_certified_gap
            )
        workloads["fleet"] = sp.duration
        # Wall-clock throughput stays OUT of the metric registry — the
        # same-seed determinism contract covers every gauge — and rides
        # in its own doc block instead, next to the other wall timings.
        fleet_block = {
            "flows": stats.flows,
            "groups": stats.groups,
            "plan_seconds": plan_seconds,
            "flows_per_second": (
                stats.flows / plan_seconds if plan_seconds > 0 else 0.0
            ),
        }

    snapshot = registry.snapshot()
    profile = build_profile(tracer.spans)
    return {
        "schema": BENCH_SCHEMA,
        "rev": rev if rev is not None else git_rev(),
        "seed": seed,
        "design": design,
        "scale": scale,
        "epochs": epochs,
        "workloads": workloads,
        "fleet": fleet_block,
        "timings": _span_paths(tracer.spans),
        "structure": structural_tree(tracer.spans),
        "metrics": snapshot.to_dict(),
        "profile": {
            path: {
                "calls": stat.calls,
                "total": stat.total,
                "self": stat.self_time,
            }
            for path, stat in sorted(profile.frames.items())
        },
    }


def bench_filename(rev: str) -> str:
    return f"BENCH_{rev}.json"


def write_bench(doc: dict, directory: str = "benchmarks") -> str:
    """Write ``BENCH_<rev>.json`` into ``directory`` (not the CWD, so
    the bench gate and the run-store dashboard read from one place);
    returns the path."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, bench_filename(doc["rev"]))
    with open(path, "w") as handle:
        json.dump(doc, handle, sort_keys=True, indent=2)
        handle.write("\n")
    return path


def validate_bench(doc: dict) -> List[str]:
    """Schema check for a bench document; [] when valid."""
    out: List[str] = []
    if doc.get("schema") != BENCH_SCHEMA:
        out.append(
            f"schema: expected {BENCH_SCHEMA!r}, got {doc.get('schema')!r}"
        )
    for key, kind in (
        ("rev", str),
        ("seed", int),
        ("workloads", dict),
        ("timings", dict),
        ("structure", list),
        ("metrics", dict),
    ):
        if not isinstance(doc.get(key), kind):
            out.append(f"{key}: missing or not a {kind.__name__}")
    if isinstance(doc.get("workloads"), dict):
        for name in ("flow", "executor", "gnn", "fleet"):
            value = doc["workloads"].get(name)
            if not isinstance(value, (int, float)) or value < 0:
                out.append(f"workloads.{name}: missing or negative")
    if isinstance(doc.get("metrics"), dict):
        for section in ("counters", "gauges", "histograms"):
            if section not in doc["metrics"]:
                out.append(f"metrics.{section}: missing")
    profile = doc.get("profile")
    if not isinstance(profile, dict):
        out.append("profile: missing or not a dict")
    else:
        for path, frame in profile.items():
            if not isinstance(frame, dict) or not (
                {"calls", "total", "self"} <= set(frame)
            ):
                out.append(f"profile.{path}: missing calls/total/self")
                break
    # The service concurrency sweep is optional (``repro bench --sweep``).
    sweep = doc.get("sweep")
    if sweep is not None:
        if not isinstance(sweep, dict):
            out.append("sweep: not a dict")
        else:
            for key in ("levels", "jobs", "throughput", "makespan_seconds"):
                if key not in sweep:
                    out.append(f"sweep.{key}: missing")
            knee = sweep.get("knee")
            if knee is not None and not (
                isinstance(knee, dict) and {"index", "x", "y"} <= set(knee)
            ):
                out.append("sweep.knee: missing index/x/y")
    return out


def _top_profile_regression(
    current: dict, baseline: dict
) -> Optional[Tuple[str, float]]:
    """The span path whose profile *self time* grew the most, if any.

    Returns ``(path, delta_seconds)`` for the largest positive self-time
    delta above :data:`ABS_GUARD_SECONDS`, or ``None`` when either
    document lacks a profile block or nothing cleared the guard.
    """
    base_prof = baseline.get("profile")
    cur_prof = current.get("profile")
    if not isinstance(base_prof, dict) or not isinstance(cur_prof, dict):
        return None
    top: Optional[Tuple[str, float]] = None
    for path in sorted(set(base_prof) & set(cur_prof)):
        delta = float(cur_prof[path].get("self", 0.0)) - float(
            base_prof[path].get("self", 0.0)
        )
        if delta > ABS_GUARD_SECONDS and (top is None or delta > top[1]):
            top = (path, delta)
    return top


def compare_bench(
    current: dict, baseline: dict, tolerance_pct: float = 25.0
) -> Tuple[List[str], List[str]]:
    """Diff two bench documents; returns ``(regressions, notes)``.

    A timing path regresses when it is more than ``tolerance_pct`` slower
    than the baseline *and* the absolute delta exceeds
    :data:`ABS_GUARD_SECONDS` (sub-centisecond spans are all noise).
    When anything regresses and both documents carry a ``profile`` block,
    a final attribution line names the span path whose self time grew
    the most — the frame to blame, not just the inclusive total.
    Structure drift (span paths appearing/disappearing) is reported as a
    note, not a regression — it usually means the workload changed shape
    and the baseline needs regenerating.
    """
    if tolerance_pct < 0:
        raise ValueError("tolerance_pct must be non-negative")
    regressions: List[str] = []
    notes: List[str] = []
    base_timings = baseline.get("timings", {})
    cur_timings = current.get("timings", {})
    for path in sorted(set(base_timings) | set(cur_timings)):
        if path not in cur_timings:
            notes.append(f"span path disappeared: {path}")
            continue
        if path not in base_timings:
            notes.append(f"new span path (no baseline): {path}")
            continue
        base = float(base_timings[path])
        cur = float(cur_timings[path])
        if cur > base * (1.0 + tolerance_pct / 100.0) and (
            cur - base > ABS_GUARD_SECONDS
        ):
            regressions.append(
                f"{path}: {cur:.4f}s vs baseline {base:.4f}s "
                f"(+{100.0 * (cur - base) / base:.1f}% > {tolerance_pct:.0f}%)"
            )
    if regressions:
        top = _top_profile_regression(current, baseline)
        if top is not None:
            regressions.append(
                f"top regressed span: {top[0]} (+{top[1]:.4f}s self time)"
            )
    return regressions, notes
