"""Critical-path latency attribution over stitched job traces.

Answers the operator's question the raw span tree cannot: *where did
this job's end-to-end latency actually go?*  :func:`attribute_job` walks
one job's stitched trace (every span carrying the job's ``trace_id``,
from the ``service.submit`` span through the executor's stage spans)
plus its lifecycle history and decomposes the end-to-end duration into
the fixed :data:`BUCKETS`:

``admission``
    The ``service.submit`` span — validation, admission control, the
    queued-edge bookkeeping.
``queue_wait``
    Admission end until the ``running`` transition (or until the
    terminal edge, for jobs cancelled while queued).
``planning``
    Non-``execute`` children of the ``service.job`` span —
    characterization flows, MCKP solves, fleet planning.
``execution``
    The executor's ``execute`` spans, *minus* the fault and transfer
    instants accounted below.
``fault_retry``
    Fault-handling instants inside the execute subtree (boot failures,
    backoff, preemptions, fallbacks, re-plans, ...), one clock tick each.
``checkpoint_transfer``
    Checkpoint/transfer instants (cross-region checkpoint moves).
``dispatch``
    Everything the service spent *around* the runner — worker pickup,
    scoped-registry setup, the terminal-transition edge.  Computed as
    the exact residual, which is what makes the decomposition total.

**Exactness contract.**  Under a deterministic service (shared
:class:`~repro.obs.spans.TickClock` between the service clock and the
tracer, inline pool), every timestamp is an integer multiple of the tick
step, so every bucket is a difference of exactly-representable floats
and the bucket sum equals the end-to-end duration **bit-for-bit** —
``sum(buckets) == end - start`` with ``==``, no tolerance.  The
``attrib`` fuzz oracle replays exactly this property.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .spans import Span, TickClock

__all__ = [
    "BUCKETS",
    "FAULT_EVENTS",
    "TRANSFER_EVENTS",
    "AttributionError",
    "Attribution",
    "attribute_job",
    "attribute_session",
    "attribution_violations",
]

#: Bucket names, in canonical (and rendering) order.
BUCKETS = (
    "admission",
    "queue_wait",
    "planning",
    "execution",
    "fault_retry",
    "checkpoint_transfer",
    "dispatch",
)

#: Span-event names that count as fault/retry overhead.  These are the
#: instants the executor and the chaos engine emit while *handling* a
#: fault rather than making forward progress.
FAULT_EVENTS = frozenset(
    {
        "boot_failure",
        "api_error",
        "stage_abort",
        "backoff",
        "straggler",
        "preemption",
        "timeout",
        "fallback",
        "replan",
        "flow_fail",
        "az_reclaim",
        "regime_shift",
        "region_failover",
    }
)

#: Span-event names that count as checkpoint/transfer overhead.
TRANSFER_EVENTS = frozenset({"checkpoint", "transfer"})


class AttributionError(ValueError):
    """The job's trace/history cannot support an exact decomposition."""


@dataclass(frozen=True)
class Attribution:
    """One job's exact latency decomposition (``sum(buckets) == total``)."""

    job_id: str
    trace_id: Optional[str]
    start: float
    end: float
    buckets: Tuple[Tuple[str, float], ...]

    @property
    def total(self) -> float:
        """End-to-end duration; bit-for-bit equal to the bucket sum."""
        return self.end - self.start

    def bucket(self, name: str) -> float:
        for key, value in self.buckets:
            if key == name:
                return value
        raise KeyError(name)

    def to_dict(self) -> dict:
        """JSON document in canonical bucket order (byte-stable)."""
        return {
            "job_id": self.job_id,
            "trace_id": self.trace_id,
            "start": self.start,
            "end": self.end,
            "total": self.total,
            "buckets": {key: value for key, value in self.buckets},
        }


def _descendants(spans: Sequence[Span], root: Span) -> List[Span]:
    """``root`` plus every transitive child present in ``spans``."""
    children: Dict[int, List[Span]] = {}
    for span in spans:
        if span.parent_id is not None:
            children.setdefault(span.parent_id, []).append(span)
    out: List[Span] = []
    frontier = [root]
    while frontier:
        span = frontier.pop()
        out.append(span)
        frontier.extend(children.get(span.span_id, []))
    return out


def attribute_job(
    job, spans: Sequence[Span], step: float = 1.0
) -> Attribution:
    """Decompose one terminal job's end-to-end latency into buckets.

    ``spans`` may be the tracer's full span list; only spans carrying
    ``job.trace_id`` participate.  ``step`` is the tick-clock step (each
    span event consumed exactly one clock call, i.e. ``step`` seconds).

    The decomposition is structural, never heuristic: interval buckets
    come from span boundaries and history edges, event buckets from
    classified instant counts, and ``dispatch`` is the exact residual —
    so the bucket sum always reproduces ``end - start``.  Requeued
    incarnations are separate jobs with separate traces.
    """
    if not job.history:
        raise AttributionError(f"job {job.job_id} has no lifecycle history")
    if not job.terminal:
        raise AttributionError(
            f"job {job.job_id} is not terminal ({job.state.value})"
        )
    trace = [s for s in spans if job.trace_id is not None
             and s.trace_id == job.trace_id]
    for span in trace:
        if not span.finished:
            raise AttributionError(
                f"job {job.job_id}: span {span.name!r} never finished"
            )

    queued_time = job.history[0][1]
    end = job.history[-1][1]
    running_time = next(
        (t for state, t in job.history if state == "running"), None
    )
    submit = next((s for s in trace if s.name == "service.submit"), None)
    job_span = next((s for s in trace if s.name == "service.job"), None)

    # Requeued incarnations (and disabled tracers) have no submit span:
    # their timeline starts at the queued edge with zero admission cost.
    start = submit.start if submit is not None else queued_time
    admission = submit.duration if submit is not None else 0.0
    admitted_at = submit.end if submit is not None else queued_time

    values: Dict[str, float] = {key: 0.0 for key in BUCKETS}
    values["admission"] = admission
    if running_time is None:
        # Cancelled while queued: it waited its whole life.
        values["queue_wait"] = end - admitted_at
    else:
        values["queue_wait"] = running_time - admitted_at
        execute_total = 0.0
        if job_span is not None:
            for child in trace:
                if child.parent_id != job_span.span_id:
                    continue
                if child.name == "execute":
                    execute_total += child.duration
                    for span in _descendants(trace, child):
                        for event in span.events:
                            if event.name in FAULT_EVENTS:
                                values["fault_retry"] += step
                            elif event.name in TRANSFER_EVENTS:
                                values["checkpoint_transfer"] += step
                else:
                    values["planning"] += child.duration
        values["execution"] = (
            execute_total
            - values["fault_retry"]
            - values["checkpoint_transfer"]
        )
        values["dispatch"] = (
            (end - running_time) - values["planning"] - execute_total
        )
    buckets = tuple((key, values[key]) for key in BUCKETS)
    return Attribution(
        job_id=job.job_id,
        trace_id=job.trace_id,
        start=start,
        end=end,
        buckets=buckets,
    )


def attribute_session(service) -> List[Attribution]:
    """Attribution for every terminal job of one service, terminal order.

    ``service`` is an :class:`~repro.service.api.EDAService` (duck-typed
    to avoid a package cycle: uses ``clock``, ``tracer``, ``jobs``,
    ``terminal_order``).  The exactness contract requires the
    deterministic configuration — a shared tick clock and an inline pool
    — which is the service's default.
    """
    clock = service.clock
    step = clock.step if isinstance(clock, TickClock) else 1.0
    spans = list(service.tracer.spans)
    by_trace: Dict[str, List[Span]] = {}
    for span in spans:
        if span.trace_id is not None:
            by_trace.setdefault(span.trace_id, []).append(span)
    out: List[Attribution] = []
    for job_id in service.terminal_order:
        job = service.jobs[job_id]
        out.append(
            attribute_job(job, by_trace.get(job.trace_id, []), step=step)
        )
    return out


def attribution_violations(service) -> List[str]:
    """Check the attribution invariants for one finished session.

    * one attribution per terminal job, in terminal order,
    * every bucket non-negative,
    * the bucket sum equals the end-to-end duration **bit-for-bit**
      (``==`` on floats, no epsilon) for every job,
    * jobs that never ran attribute nothing to planning/execution.

    Returns human-readable violation strings; ``[]`` when all hold.
    """
    out: List[str] = []
    try:
        attribs = attribute_session(service)
    except AttributionError as exc:
        return [f"attribution failed: {exc}"]
    if [a.job_id for a in attribs] != list(service.terminal_order):
        out.append("attribution order does not match terminal order")
    for a in attribs:
        total = a.total
        bucket_sum = 0.0
        for key, value in a.buckets:
            bucket_sum += value
            if value < 0.0:
                out.append(
                    f"{a.job_id}: bucket {key} is negative ({value!r})"
                )
        if bucket_sum != total:
            out.append(
                f"{a.job_id}: bucket sum {bucket_sum!r} != total {total!r}"
            )
        if a.end < a.start:
            out.append(f"{a.job_id}: end {a.end!r} before start {a.start!r}")
        job = service.jobs[a.job_id]
        ran = any(state == "running" for state, _ in job.history)
        if not ran:
            for key in ("planning", "execution", "fault_retry",
                        "checkpoint_transfer", "dispatch"):
                if a.bucket(key) != 0.0:
                    out.append(
                        f"{a.job_id}: never ran but {key} = "
                        f"{a.bucket(key)!r}"
                    )
    return out
