"""Hierarchical wall-clock spans with a thread-local span stack.

A :class:`Span` is one timed region of work; spans opened while another
span is active on the same thread become its children, so a run of the
flow/executor/trainer produces a tree.  Three properties make the spans
usable as *test fixtures* and not just as profiling output:

* **Monotonic timing** — the default clock is ``time.perf_counter``,
  never the wall clock, so durations are immune to NTP steps.
* **Deterministic mode** — ``Tracer(deterministic=True)`` swaps the
  clock for a counting tick clock (1.0 per call) and span IDs are always
  allocation-counter based, so the same seeded workload produces a
  byte-identical trace; the golden-trace tests rely on this.
* **Zero-cost when disabled** — a disabled tracer hands out a shared
  no-op context manager, so instrumented hot paths (the executor's
  Monte-Carlo loops, the tier-1 suite) pay one attribute check per span.

The module-level :func:`get_tracer`/:func:`set_tracer` pair holds the
process-global tracer, which starts *disabled*; ``repro trace`` /
``repro bench`` and the tests install enabled tracers scoped to a run.
"""

from __future__ import annotations

import functools
import threading
import time
import zlib
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

__all__ = [
    "Span",
    "SpanEvent",
    "Tracer",
    "TickClock",
    "NULL_SPAN",
    "get_tracer",
    "set_tracer",
    "mint_trace_id",
    "traced",
    "well_nested_violations",
]


def mint_trace_id(component: str, seed: int, index: int = 0) -> str:
    """Deterministic 16-hex-digit trace id, never wall-clock derived.

    Uses the repo-wide crc32 stream construction (two independent
    streams over the ``component:seed:index`` triple), so the same
    seeded workload mints byte-identical trace ids on every run.
    """
    hi = zlib.crc32(f"trace:{component}:{seed}:{index}".encode())
    lo = zlib.crc32(f"trace:{index}:{seed}:{component}".encode())
    return f"{hi:08x}{lo:08x}"


@dataclass(frozen=True)
class SpanEvent:
    """A zero-duration instant attached to a span (fault, retry, ...)."""

    name: str
    time: float
    tags: Dict[str, object] = field(default_factory=dict)


@dataclass
class Span:
    """One timed region; children are linked by ``parent_id``."""

    span_id: int
    parent_id: Optional[int]
    name: str
    start: float
    thread: str
    tags: Dict[str, object] = field(default_factory=dict)
    events: List[SpanEvent] = field(default_factory=list)
    end: Optional[float] = None
    #: End-to-end trace this span belongs to (inherited from the parent
    #: span or the tracer's active :meth:`Tracer.trace` binding).
    trace_id: Optional[str] = None
    #: The owning tracer's clock, used to default event timestamps.
    #: Excluded from repr/compare so traces stay value-comparable.
    clock: Optional[Callable[[], float]] = field(
        default=None, repr=False, compare=False
    )

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def uid(self) -> str:
        """Globally meaningful span id: crc32 of ``trace_id:span_id``.

        Within one tracer ``span_id`` (the allocation counter) is already
        deterministic; the uid folds the trace id in so spans stitched
        from different traces stay distinguishable after export.
        """
        if self.trace_id is None:
            return f"{self.span_id:08x}"
        return f"{zlib.crc32(f'{self.trace_id}:{self.span_id}'.encode()):08x}"

    @property
    def duration(self) -> float:
        """Seconds between start and end (0 while the span is open)."""
        return (self.end - self.start) if self.end is not None else 0.0

    def set_tag(self, key: str, value) -> "Span":
        self.tags[key] = value
        return self

    def set_tags(self, **tags) -> "Span":
        self.tags.update(tags)
        return self

    def add_event(
        self, name: str, time: Optional[float] = None, **tags
    ) -> SpanEvent:
        """Attach an instant; ``time`` defaults to the tracer clock's now.

        Detached spans (built by hand, no tracer clock) fall back to the
        span's own start so the event still lands inside the interval.
        """
        if time is None:
            time = self.clock() if self.clock is not None else self.start
        event = SpanEvent(name=name, time=time, tags=tags)
        self.events.append(event)
        return event


class _NullSpan:
    """Shared do-nothing span handed out by disabled tracers."""

    __slots__ = ()
    span_id = -1
    parent_id = None
    trace_id = None
    name = ""
    tags: Dict[str, object] = {}
    events: List[SpanEvent] = []
    finished = True
    duration = 0.0

    def set_tag(self, key: str, value) -> "_NullSpan":
        return self

    def set_tags(self, **tags) -> "_NullSpan":
        return self

    def add_event(self, name: str, time: Optional[float] = None, **tags) -> None:
        return None


#: The span a disabled tracer yields — all mutators are no-ops.
NULL_SPAN = _NullSpan()


class _NullContext:
    """Reusable no-op context manager (one allocation per process)."""

    __slots__ = ()

    def __enter__(self):
        return NULL_SPAN

    def __exit__(self, *exc):
        return False


_NULL_CONTEXT = _NullContext()


class TickClock:
    """Counting clock for deterministic traces: 0.0, 1.0, 2.0, ..."""

    def __init__(self, step: float = 1.0):
        self.step = step
        self._ticks = 0

    def __call__(self) -> float:
        value = self._ticks * self.step
        self._ticks += 1
        return value


class Tracer:
    """Collects spans; one thread-local stack defines parenthood.

    Parameters
    ----------
    clock:
        Zero-argument callable returning seconds.  Defaults to
        ``time.perf_counter`` (monotonic), or a fresh :class:`TickClock`
        when ``deterministic=True``.  An explicitly passed clock is
        always honored — the service layer shares one tick clock between
        its job state machine and its tracer so history edges and span
        boundaries interleave on a single timeline.
    deterministic:
        Use a counting tick clock so timestamps (and therefore the whole
        trace) are reproducible byte-for-byte.
    enabled:
        Disabled tracers record nothing and yield :data:`NULL_SPAN`.
    """

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        deterministic: bool = False,
        enabled: bool = True,
    ):
        if deterministic and clock is None:
            clock = TickClock()
        self.clock = clock if clock is not None else time.perf_counter
        self.deterministic = deterministic
        self.enabled = enabled
        self.spans: List[Span] = []
        self.orphan_events: List[SpanEvent] = []
        self._lock = threading.Lock()
        self._local = threading.local()
        # Innermost-first snapshot of the open-span stack, captured at the
        # moment an exception started unwinding (see _record_span).  Holds
        # a strong reference to the exception until reset() — the flight
        # recorder reads it while building a crash report.
        self._crash_exc: Optional[BaseException] = None
        self._crash_stack: List[Span] = []

    # -- span stack -------------------------------------------------------
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _trace_stack(self) -> List[str]:
        stack = getattr(self._local, "traces", None)
        if stack is None:
            stack = self._local.traces = []
        return stack

    def current(self) -> Optional[Span]:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    # -- trace context ----------------------------------------------------
    @contextmanager
    def trace(self, trace_id: Optional[str]):
        """Bind spans opened on this thread to ``trace_id`` (nestable).

        Spans inherit their trace id from the parent span first, then
        from the innermost active binding, so binding around a job's
        whole execution stitches every component's spans (service,
        planner, executor, chaos) into one end-to-end trace.  Passing
        ``None`` (or using a disabled tracer) is a no-op.
        """
        if not self.enabled or trace_id is None:
            yield trace_id
            return
        stack = self._trace_stack()
        stack.append(trace_id)
        try:
            yield trace_id
        finally:
            stack.pop()

    def current_trace_id(self) -> Optional[str]:
        """The innermost trace binding on this thread, if any."""
        stack = self._trace_stack()
        return stack[-1] if stack else None

    def spans_for_trace(self, trace_id: str) -> List[Span]:
        """All spans stitched into ``trace_id``, in allocation order."""
        return [s for s in self.spans if s.trace_id == trace_id]

    def open_stack(self) -> List[Span]:
        """Copy of this thread's open-span stack, outermost first."""
        return list(self._stack())

    def crash_stack(self, exc: Optional[BaseException] = None) -> List[Span]:
        """The open-span stack as it stood when ``exc`` started unwinding.

        Span context managers close (in ``finally``) while an exception
        propagates, so by the time an outer handler runs the stack is
        already empty.  ``_record_span`` snapshots the stack the first
        time it sees a given exception; passing that exception here
        returns the snapshot.  For any other (or no) exception this falls
        back to the live open stack.
        """
        if exc is not None and self._crash_exc is exc:
            return list(self._crash_stack)
        return self.open_stack()

    # -- recording --------------------------------------------------------
    def span(self, name: str, **tags):
        """Context manager opening a child of the current span."""
        if not self.enabled:
            return _NULL_CONTEXT
        return self._record_span(name, tags)

    @contextmanager
    def _record_span(self, name: str, tags: Dict[str, object]):
        stack = self._stack()
        parent = stack[-1] if stack else None
        if parent is not None and parent.trace_id is not None:
            trace_id = parent.trace_id
        else:
            trace_id = self.current_trace_id()
        with self._lock:
            span = Span(
                span_id=len(self.spans),
                parent_id=parent.span_id if parent is not None else None,
                name=name,
                start=self.clock(),
                thread=threading.current_thread().name,
                tags=dict(tags),
                trace_id=trace_id,
                clock=self.clock,
            )
            self.spans.append(span)
        stack.append(span)
        try:
            yield span
        except BaseException as exc:
            # First span to see this exception is the innermost one, so
            # the stack snapshot below is the full crash stack.
            if self._crash_exc is not exc:
                self._crash_exc = exc
                self._crash_stack = list(stack)
            raise
        finally:
            stack.pop()
            with self._lock:
                span.end = self.clock()

    def event(self, name: str, **tags) -> None:
        """Record an instant on the current span (orphaned if none open)."""
        if not self.enabled:
            return
        with self._lock:
            now = self.clock()
        current = self.current()
        if current is not None:
            current.add_event(name, now, **tags)
        else:
            self.orphan_events.append(SpanEvent(name=name, time=now, tags=tags))

    # -- inspection -------------------------------------------------------
    def finished_spans(self) -> List[Span]:
        return [s for s in self.spans if s.finished]

    def roots(self) -> List[Span]:
        return [s for s in self.spans if s.parent_id is None]

    def children_of(self, span: Span) -> List[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    def find(self, name: str) -> List[Span]:
        return [s for s in self.spans if s.name == name]

    def reset(self) -> None:
        """Drop all recorded spans (open spans on other threads included)."""
        with self._lock:
            self.spans = []
            self.orphan_events = []
            self._crash_exc = None
            self._crash_stack = []
        self._local = threading.local()


# ----------------------------------------------------------------------
# Process-global tracer (starts disabled: instrumentation is free until
# a CLI command or test turns it on).
# ----------------------------------------------------------------------
_global_tracer = Tracer(enabled=False)


def get_tracer() -> Tracer:
    """The process-global tracer the instrumented modules report to."""
    return _global_tracer


def set_tracer(tracer: Tracer) -> Tracer:
    """Install ``tracer`` as the global tracer; returns the previous one."""
    global _global_tracer
    previous = _global_tracer
    _global_tracer = tracer
    return previous


def traced(name: Optional[str] = None, **tags):
    """Decorator: run the function inside a span on the global tracer."""

    def decorate(func):
        span_name = name if name is not None else func.__qualname__

        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            with get_tracer().span(span_name, **tags):
                return func(*args, **kwargs)

        return wrapper

    return decorate


# ----------------------------------------------------------------------
# Invariant checking (shared by the property tests and the obs oracle)
# ----------------------------------------------------------------------
def well_nested_violations(spans: List[Span]) -> List[str]:
    """Check the span-tree timing invariants; [] when they all hold.

    * every finished child's interval lies inside its parent's,
    * siblings on the same thread do not overlap (the per-thread stack
      makes concurrent siblings impossible),
    * parents start no later than their children (IDs allocate in start
      order, so a child's ID exceeds its parent's).
    """
    out: List[str] = []
    by_id = {s.span_id: s for s in spans}
    for span in spans:
        if not span.finished:
            out.append(f"span {span.span_id} ({span.name}): never finished")
            continue
        if span.end < span.start:
            out.append(
                f"span {span.span_id} ({span.name}): negative duration "
                f"[{span.start}, {span.end}]"
            )
        for event in span.events:
            if event.time < span.start or event.time > span.end:
                out.append(
                    f"span {span.span_id} ({span.name}): event "
                    f"{event.name!r} at {event.time} outside the span"
                )
        if span.parent_id is None:
            continue
        parent = by_id.get(span.parent_id)
        if parent is None:
            out.append(
                f"span {span.span_id} ({span.name}): dangling parent id "
                f"{span.parent_id}"
            )
            continue
        if span.span_id <= parent.span_id:
            out.append(
                f"span {span.span_id} ({span.name}): id not after parent "
                f"{parent.span_id}"
            )
        if span.start < parent.start or (
            parent.finished and span.end > parent.end
        ):
            out.append(
                f"span {span.span_id} ({span.name}): interval "
                f"[{span.start}, {span.end}] escapes parent "
                f"{parent.span_id} [{parent.start}, {parent.end}]"
            )
    # Sibling overlap, per (parent, thread).
    groups: Dict[tuple, List[Span]] = {}
    for span in spans:
        if span.finished:
            groups.setdefault((span.parent_id, span.thread), []).append(span)
    for (parent_id, thread), siblings in groups.items():
        siblings.sort(key=lambda s: (s.start, s.span_id))
        for a, b in zip(siblings, siblings[1:]):
            if b.start < a.end:
                out.append(
                    f"siblings {a.span_id} ({a.name}) and {b.span_id} "
                    f"({b.name}) overlap on thread {thread}"
                )
    return out
