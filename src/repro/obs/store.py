"""Append-only multi-run telemetry store (JSONL, schema-versioned).

One-off ``BENCH_<rev>.json`` files answer "is this revision slower than
the baseline"; they cannot answer "what has ``executor.billed_cost``
done over the last twenty runs".  The store fixes that: every run —
bench, verify, execute, or anything else — appends one JSON line to
``benchmarks/runs/runs.jsonl``, and :mod:`repro.obs.report` draws its
time series, percentile summaries, and regression flags from it.

Design points:

* **Append-only JSONL** — one self-contained document per line, so a
  crashed writer can at worst leave a truncated final line and readers
  never need locks.  Records carry their own ``schema`` tag
  (:data:`RUNS_SCHEMA`); a mismatch raises :class:`StoreSchemaError`
  (a named error, never a bare ``KeyError``), undecodable lines raise
  :class:`StoreCorruptError` with the line number.
* **Timestamps are passed in** — callers stamp records at the CLI
  boundary (one ``datetime.now(timezone.utc)`` per process), never in
  hot paths, so library code stays deterministic and replayable.
* **Percentiles without raw samples** — runs persist the log2-bin
  histograms from :mod:`repro.obs.metrics`; summaries merge bins across
  runs (:func:`merge_snapshots` algebra) and read percentiles off the
  bin edges, so the store stays O(runs), not O(observations).
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .metrics import (
    HistogramSnapshot,
    MetricsSnapshot,
    ZERO_BIN,
    bin_bounds,
    merge_snapshots,
    snapshot_from_dict,
)

__all__ = [
    "RUNS_SCHEMA",
    "DEFAULT_STORE_PATH",
    "StoreError",
    "StoreSchemaError",
    "StoreCorruptError",
    "EmptyHistogramError",
    "RunRecord",
    "RunStore",
    "bench_to_run",
    "filter_runs",
    "metric_value",
    "metric_names",
    "metric_series",
    "merged_histogram",
    "histogram_percentile",
    "percentile_summary",
]

#: Schema tag stamped into every stored run record.
RUNS_SCHEMA = "repro-runs/1"

#: Where the CLI commands append runs by default.
DEFAULT_STORE_PATH = os.path.join("benchmarks", "runs", "runs.jsonl")


class StoreError(Exception):
    """Base class for run-store failures."""


class StoreSchemaError(StoreError):
    """A stored record's schema tag does not match :data:`RUNS_SCHEMA`."""


class StoreCorruptError(StoreError):
    """A store line is not valid JSON or lacks required fields."""


class EmptyHistogramError(StoreError):
    """A percentile was requested from a histogram with zero observations.

    Raised instead of letting NaN fall out of the bin walk — callers that
    tolerate missing data (the report renderer, the SLO engine's no-data
    path) catch this by name.
    """


@dataclass(frozen=True)
class RunRecord:
    """One run's durable telemetry: metadata + metric/timing payloads.

    ``metrics`` is a :meth:`MetricsSnapshot.to_dict` document;
    ``timings`` maps span paths to wall-clock seconds (machine-
    dependent); ``labels`` carries free-form metadata (design, epochs,
    profile, ...).
    """

    kind: str
    rev: str
    seed: int
    timestamp_utc: str
    scale: float = 0.0
    labels: Dict[str, object] = field(default_factory=dict)
    metrics: Dict[str, dict] = field(default_factory=dict)
    timings: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "schema": RUNS_SCHEMA,
            "kind": self.kind,
            "rev": self.rev,
            "seed": self.seed,
            "timestamp_utc": self.timestamp_utc,
            "scale": self.scale,
            "labels": {k: self.labels[k] for k in sorted(self.labels)},
            "metrics": self.metrics,
            "timings": self.timings,
        }

    @classmethod
    def from_dict(cls, doc: dict, line: Optional[int] = None) -> "RunRecord":
        where = "" if line is None else f" (line {line})"
        schema = doc.get("schema")
        if schema != RUNS_SCHEMA:
            raise StoreSchemaError(
                f"run store schema mismatch{where}: expected "
                f"{RUNS_SCHEMA!r}, got {schema!r} — regenerate the store "
                f"or migrate the file"
            )
        missing = [
            key
            for key in ("kind", "rev", "seed", "timestamp_utc")
            if key not in doc
        ]
        if missing:
            raise StoreCorruptError(
                f"run record{where} is missing required fields: "
                f"{', '.join(missing)}"
            )
        return cls(
            kind=str(doc["kind"]),
            rev=str(doc["rev"]),
            seed=int(doc["seed"]),
            timestamp_utc=str(doc["timestamp_utc"]),
            scale=float(doc.get("scale", 0.0)),
            labels=dict(doc.get("labels", {})),
            metrics=dict(doc.get("metrics", {})),
            timings=dict(doc.get("timings", {})),
        )

    @property
    def snapshot(self) -> MetricsSnapshot:
        return snapshot_from_dict(self.metrics)


class RunStore:
    """Append-only JSONL store of :class:`RunRecord` documents."""

    def __init__(self, path: str = DEFAULT_STORE_PATH):
        self.path = path

    def append(self, record: RunRecord) -> None:
        """Append one record as a single JSON line (sorted keys)."""
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(self.path, "a") as handle:
            handle.write(json.dumps(record.to_dict(), sort_keys=True))
            handle.write("\n")

    def load(self) -> List[RunRecord]:
        """All records, oldest first; ``[]`` when the file is absent."""
        if not os.path.exists(self.path):
            return []
        records: List[RunRecord] = []
        with open(self.path) as handle:
            for number, raw in enumerate(handle, start=1):
                raw = raw.strip()
                if not raw:
                    continue
                try:
                    doc = json.loads(raw)
                except ValueError as exc:
                    raise StoreCorruptError(
                        f"run store {self.path} line {number} is not valid "
                        f"JSON: {exc}"
                    ) from None
                if not isinstance(doc, dict):
                    raise StoreCorruptError(
                        f"run store {self.path} line {number} is not a "
                        f"JSON object"
                    )
                records.append(RunRecord.from_dict(doc, line=number))
        return records

    def __len__(self) -> int:
        return len(self.load())


def bench_to_run(doc: dict, timestamp_utc: str) -> RunRecord:
    """Convert a ``repro-bench/1`` document into a storable run record.

    The bench profile block is summarized down to its ten hottest frames
    by self time (``labels["profile_top"]``) so the dashboard can show
    where the run's time went without the store growing with every span
    path the workloads ever produce.
    """
    labels: Dict[str, object] = {
        "design": doc.get("design"),
        "epochs": doc.get("epochs"),
        "workloads": doc.get("workloads", {}),
    }
    profile = doc.get("profile")
    if isinstance(profile, dict) and profile:
        ranked = sorted(
            profile.items(),
            key=lambda item: (-float(item[1].get("self", 0.0)), item[0]),
        )
        labels["profile_top"] = [
            {
                "path": path,
                "calls": int(frame.get("calls", 0)),
                "self": float(frame.get("self", 0.0)),
            }
            for path, frame in ranked[:10]
        ]
    return RunRecord(
        kind="bench",
        rev=str(doc.get("rev", "dev")),
        seed=int(doc.get("seed", 0)),
        timestamp_utc=timestamp_utc,
        scale=float(doc.get("scale", 0.0)),
        labels=labels,
        metrics=dict(doc.get("metrics", {})),
        timings=dict(doc.get("timings", {})),
    )


# ----------------------------------------------------------------------
# Queries: time series and percentile summaries over stored runs
# ----------------------------------------------------------------------
def metric_value(record: RunRecord, name: str) -> Optional[float]:
    """The scalar value of ``name`` in one run (counter, then gauge)."""
    for section in ("counters", "gauges"):
        table = record.metrics.get(section, {})
        if name in table:
            return float(table[name])
    return None


def filter_runs(
    runs: Sequence[RunRecord],
    kinds: Optional[Sequence[str]] = None,
    rev: Optional[str] = None,
) -> List[RunRecord]:
    """Subset of ``runs`` matching the given kinds and/or revision.

    ``kinds`` matches exactly *or* by dotted prefix, so ``"service"``
    selects both ``service`` session records and ``service.job`` records
    (``repro report --kind service``).  ``None`` means no constraint.
    """
    out: List[RunRecord] = []
    for record in runs:
        if kinds is not None and not any(
            record.kind == k or record.kind.startswith(k + ".")
            for k in kinds
        ):
            continue
        if rev is not None and record.rev != rev:
            continue
        out.append(record)
    return out


def metric_names(runs: Sequence[RunRecord]) -> List[str]:
    """Sorted union of scalar metric names across ``runs``."""
    names = set()
    for record in runs:
        names.update(record.metrics.get("counters", {}))
        names.update(record.metrics.get("gauges", {}))
    return sorted(names)


def metric_series(
    runs: Sequence[RunRecord], name: str
) -> List[Tuple[RunRecord, float]]:
    """Per-run time series of one scalar metric, store order preserved."""
    out: List[Tuple[RunRecord, float]] = []
    for record in runs:
        value = metric_value(record, name)
        if value is not None:
            out.append((record, value))
    return out


def merged_histogram(
    runs: Sequence[RunRecord], name: str
) -> Optional[HistogramSnapshot]:
    """Union of one histogram across runs (fixed bins merge exactly)."""
    merged: Optional[MetricsSnapshot] = None
    for record in runs:
        if name not in record.metrics.get("histograms", {}):
            continue
        snap = record.snapshot
        merged = snap if merged is None else merge_snapshots(merged, snap)
    return None if merged is None else merged.histograms.get(name)


def histogram_percentile(hist: HistogramSnapshot, q: float) -> float:
    """Approximate percentile ``q`` (0..100) from log2-bin counts.

    Walks the sorted bins to the one holding the q-th observation and
    returns that bin's geometric midpoint, clamped to the histogram's
    observed min/max (so p0/p100 are exact).  The zero bin reports its
    true minimum (non-positive observations carry no spread).  An empty
    histogram (``count == 0``) raises :class:`EmptyHistogramError` — a
    percentile of nothing is a caller bug, not a NaN.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError("percentile must be in [0, 100]")
    if hist.count == 0:
        raise EmptyHistogramError(
            f"cannot take p{q:g} of an empty histogram"
        )
    if q == 0.0 and hist.min is not None:
        return float(hist.min)
    if q == 100.0 and hist.max is not None:
        return float(hist.max)
    target = max(1.0, math.ceil(q / 100.0 * hist.count))
    cumulative = 0
    for index, count in hist.bins:
        cumulative += count
        if cumulative >= target:
            if index == ZERO_BIN:
                return float(hist.min) if hist.min is not None else 0.0
            lo, hi = bin_bounds(index)
            if hist.min is not None:
                lo = max(lo, float(hist.min))
            if hist.max is not None and math.isfinite(hi):
                hi = min(hi, float(hist.max))
            elif hist.max is not None:
                hi = float(hist.max)
            if hi <= lo:
                return lo
            return math.sqrt(lo * hi) if lo > 0 else (lo + hi) / 2.0
    # Unreachable when bin counts sum to hist.count (a checked property).
    return float(hist.max) if hist.max is not None else float("nan")


def percentile_summary(
    runs: Sequence[RunRecord],
    name: str,
    percentiles: Sequence[float] = (50.0, 90.0, 99.0),
) -> Dict[str, float]:
    """``{"p50": ..., ...}`` for one histogram merged across runs.

    Returns ``{}`` when no run recorded the histogram *or* the merged
    histogram is empty — the summary never raises on missing data.
    """
    hist = merged_histogram(runs, name)
    if hist is None or hist.count == 0:
        return {}
    return {
        f"p{int(q) if float(q).is_integer() else q}": histogram_percentile(
            hist, q
        )
        for q in percentiles
    }
