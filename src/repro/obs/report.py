"""Regression report over the run store: sparklines, MAD flags, HTML.

``repro report`` reads the append-only store
(:mod:`repro.obs.store`) and renders the perf trajectory two ways — a
terminal summary with unicode sparklines, and a self-contained HTML
dashboard (inline CSS + SVG, no external assets) — flagging two kinds
of regression:

* **MAD outliers** (warnings).  For each scalar metric, the latest
  value is compared against the median of the trailing window using
  the median absolute deviation: robust z = 0.6745·(x − median)/MAD.
  |z| > 3.5 flags the run.  MAD is used instead of the standard
  deviation because a perf history is exactly the place where a few
  wild runs would inflate σ and mask real drift.
* **Deterministic drift** (failures, rendered in red).  Billed seconds
  and billed cost are *exact* functions of the seed — the executor is
  a deterministic discrete-event simulation — so within one
  (kind, seed, scale, design) group those values must be bit-identical
  across runs.  Any difference is a correctness bug, not noise, and
  makes ``repro report`` exit non-zero.

Histogram metrics get percentile summaries (p50/p90/p99) computed from
the merged log2 bins — no raw samples are ever stored.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .slo import SLOReport, SLOSpec, evaluate_slo
from .store import (
    RunRecord,
    histogram_percentile,
    merged_histogram,
    metric_names,
    metric_series,
    metric_value,
)

__all__ = [
    "DETERMINISTIC_METRICS",
    "RegressionFlag",
    "MetricRow",
    "HistogramRow",
    "ScenarioRow",
    "RunReport",
    "sparkline",
    "mad_outlier",
    "deterministic_drift",
    "latest_profile_top",
    "scenario_rows",
    "build_report",
    "render_text",
    "render_html",
]

#: Metrics that are exact functions of the seed: any value drift within
#: a (kind, seed, scale, design) group is a correctness bug.
DETERMINISTIC_METRICS: Tuple[str, ...] = (
    "executor.billed_seconds",
    "executor.billed_cost",
    "bench.executor.total_cost",
    "bench.executor.sim_seconds",
    # Service layer: per-job billing (service.job records) and the
    # concurrency-sweep knee (bench --sweep records) are exact functions
    # of the session seed.
    "service.job.total_cost",
    "service.job.sim_seconds",
    # The deadline verdict and the deadline itself are pure functions of
    # the job seed (the executor simulation is), so they drift-gate too —
    # which transitively pins the SLO engine's deadline-hit-rate input.
    "service.job.met_deadline",
    "service.job.deadline_seconds",
    "service.sweep.knee_workers",
    # Chaos scenarios: one (scenario, seed, severity) cell is one run of
    # a deterministic discrete-event simulation — exact replay required.
    "chaos.scenario.total_cost",
    "chaos.scenario.sim_seconds",
    "chaos.scenario.overrun_time",
    "chaos.scenario.overrun_cost",
    # Fleet planner: a plan is an exact function of (seed, fleet shape).
    # Wall-clock throughput lives in the bench doc's "fleet" block, not
    # in the gauge registry, so every fleet gauge is drift-gated.
    "bench.fleet.planned_flows",
    "bench.fleet.feasible_flows",
    "bench.fleet.groups",
    "bench.fleet.pruned_options",
    "bench.fleet.total_cost",
    "bench.fleet.max_certified_gap",
)

#: Robust-z threshold for MAD outlier flags.
MAD_THRESHOLD = 3.5

#: Consistency constant: robust z = _MAD_SCALE * (x - median) / MAD.
_MAD_SCALE = 0.6745

_SPARK_CHARS = "▁▂▃▄▅▆▇█"


@dataclass(frozen=True)
class RegressionFlag:
    """One flagged metric: ``kind`` is ``"mad"`` or ``"deterministic"``."""

    metric: str
    kind: str
    message: str


@dataclass
class MetricRow:
    """One scalar metric's series across the store, plus its flag."""

    name: str
    values: List[float]
    flag: Optional[RegressionFlag] = None

    @property
    def last(self) -> float:
        return self.values[-1]


@dataclass
class HistogramRow:
    """Percentile summary of one histogram merged across runs."""

    name: str
    count: int
    percentiles: Dict[str, float] = field(default_factory=dict)


@dataclass
class ScenarioRow:
    """One chaos scenario's severity-vs-overrun sweep (latest runs)."""

    name: str
    severities: List[float]
    time_overruns: List[float]
    cost_overruns: List[float]


@dataclass
class RunReport:
    """Everything the renderers need, regression verdict included."""

    runs: List[RunRecord]
    rows: List[MetricRow] = field(default_factory=list)
    histogram_rows: List[HistogramRow] = field(default_factory=list)
    scenario_sweeps: List[ScenarioRow] = field(default_factory=list)
    drift: List[RegressionFlag] = field(default_factory=list)
    window: int = 8
    #: SLO evaluation over the same runs, when a spec was supplied.
    slo: Optional[SLOReport] = None

    @property
    def ok(self) -> bool:
        """True iff no deterministic metric drifted and no SLO is violated
        (MAD flags warn only)."""
        if self.slo is not None and self.slo.violated:
            return False
        return not self.drift

    @property
    def outliers(self) -> List[RegressionFlag]:
        return [r.flag for r in self.rows if r.flag is not None]


def sparkline(values: Sequence[float]) -> str:
    """Unicode trend line: one block character per value."""
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if hi <= lo:
        return _SPARK_CHARS[3] * len(values)
    span = hi - lo
    top = len(_SPARK_CHARS) - 1
    return "".join(
        _SPARK_CHARS[min(top, int((v - lo) / span * top))] for v in values
    )


def mad_outlier(
    values: Sequence[float],
    window: int = 8,
    threshold: float = MAD_THRESHOLD,
) -> Optional[str]:
    """MAD check of the latest value against its trailing window.

    Returns a message when the latest value is a robust-z outlier (or
    jumps off a perfectly constant baseline), ``None`` otherwise.
    Needs at least 3 baseline values to say anything.
    """
    if window < 1:
        raise ValueError("window must be >= 1")
    if len(values) < 4:
        return None
    baseline = sorted(values[-(window + 1):-1])
    if len(baseline) < 3:
        return None
    latest = values[-1]
    mid = len(baseline) // 2
    if len(baseline) % 2:
        median = baseline[mid]
    else:
        median = (baseline[mid - 1] + baseline[mid]) / 2.0
    deviations = sorted(abs(v - median) for v in baseline)
    if len(deviations) % 2:
        mad = deviations[mid]
    else:
        mad = (deviations[mid - 1] + deviations[mid]) / 2.0
    if mad > 0.0:
        z = _MAD_SCALE * (latest - median) / mad
        if abs(z) > threshold:
            return (
                f"latest {latest:.6g} is a robust-z {z:+.1f} outlier vs "
                f"trailing median {median:.6g} (MAD {mad:.3g}, "
                f"window {len(baseline)})"
            )
        return None
    # Constant baseline: any material departure is a jump.
    if abs(latest - median) > 1e-12 * max(1.0, abs(median)):
        return (
            f"latest {latest:.6g} departs a constant baseline of "
            f"{median:.6g} (window {len(baseline)})"
        )
    return None


def latest_profile_top(runs: Sequence[RunRecord]) -> List[dict]:
    """The most recent run's top-frames profile summary, if stored.

    Bench runs carry ``labels["profile_top"]`` (see
    :func:`repro.obs.store.bench_to_run`); the newest run that has one
    wins, so the dashboard always shows where the *latest* run's time
    went.
    """
    for record in reversed(list(runs)):
        top = record.labels.get("profile_top")
        if isinstance(top, list) and top:
            return [f for f in top if isinstance(f, dict)]
    return []


def scenario_rows(runs: Sequence[RunRecord]) -> List[ScenarioRow]:
    """Per-scenario severity sweeps from ``chaos.scenario`` records.

    For each scenario, the *latest* record per severity wins (the store
    is append-only, so reruns supersede), and the sweep is sorted by
    severity — the natural x-axis of a graceful-degradation curve.
    """
    cells: Dict[str, Dict[float, Tuple[float, float]]] = {}
    for record in runs:
        if record.kind != "chaos.scenario":
            continue
        name = str(
            record.labels.get("scenario", record.labels.get("design", "?"))
        )
        time_overrun = metric_value(record, "chaos.scenario.overrun_time")
        cost_overrun = metric_value(record, "chaos.scenario.overrun_cost")
        if time_overrun is None or cost_overrun is None:
            continue
        cells.setdefault(name, {})[record.scale] = (time_overrun, cost_overrun)
    out: List[ScenarioRow] = []
    for name in sorted(cells):
        severities = sorted(cells[name])
        out.append(
            ScenarioRow(
                name=name,
                severities=severities,
                time_overruns=[cells[name][s][0] for s in severities],
                cost_overruns=[cells[name][s][1] for s in severities],
            )
        )
    return out


def _group_key(record: RunRecord) -> Tuple:
    """Runs in one group must agree bit-for-bit on deterministic metrics."""
    return (
        record.kind,
        record.seed,
        record.scale,
        str(record.labels.get("design")),
    )


def deterministic_drift(
    runs: Sequence[RunRecord],
    metrics: Sequence[str] = DETERMINISTIC_METRICS,
) -> List[RegressionFlag]:
    """Exact-value drift check for seed-deterministic metrics.

    Groups runs by (kind, seed, scale, design); within a group every
    listed metric must repeat exactly.  Returns one flag per drifted
    (metric, group).
    """
    flags: List[RegressionFlag] = []
    for name in metrics:
        groups: Dict[Tuple, List[Tuple[RunRecord, float]]] = {}
        for record, value in metric_series(runs, name):
            groups.setdefault(_group_key(record), []).append((record, value))
        for key, pairs in sorted(groups.items(), key=lambda kv: repr(kv[0])):
            values = [v for _, v in pairs]
            if len(values) < 2 or all(v == values[0] for v in values):
                continue
            revs = ", ".join(
                f"{rec.rev}={value!r}" for rec, value in pairs
            )
            kind, seed, scale, design = key
            flags.append(
                RegressionFlag(
                    metric=name,
                    kind="deterministic",
                    message=(
                        f"{name} must be bit-stable for "
                        f"kind={kind} seed={seed} scale={scale} "
                        f"design={design} but drifted: {revs}"
                    ),
                )
            )
    return flags


def build_report(
    runs: Sequence[RunRecord],
    window: int = 8,
    metric_filter: Optional[Sequence[str]] = None,
    deterministic_metrics: Sequence[str] = DETERMINISTIC_METRICS,
    slo_spec: Optional[SLOSpec] = None,
    slo_window: int = 0,
) -> RunReport:
    """Assemble the full report: rows, histogram summaries, drift flags.

    When ``slo_spec`` is given the report also carries its evaluation
    (burn windows sized by ``slo_window``) and a violated SLO makes the
    report not-``ok`` — ``repro report`` then exits non-zero exactly
    like deterministic drift does.
    """
    runs = list(runs)
    report = RunReport(runs=runs, window=window)
    if slo_spec is not None:
        report.slo = evaluate_slo(slo_spec, runs, window=slo_window)
    if not runs:
        return report

    def selected(name: str) -> bool:
        if not metric_filter:
            return True
        return any(pattern in name for pattern in metric_filter)

    for name in metric_names(runs):
        if not selected(name):
            continue
        values = [value for _, value in metric_series(runs, name)]
        if not values:
            continue
        row = MetricRow(name=name, values=values)
        message = mad_outlier(values, window=window)
        if message is not None:
            row.flag = RegressionFlag(metric=name, kind="mad", message=message)
        report.rows.append(row)

    hist_names = sorted(
        {
            name
            for record in runs
            for name in record.metrics.get("histograms", {})
        }
    )
    for name in hist_names:
        if not selected(name):
            continue
        hist = merged_histogram(runs, name)
        if hist is None or hist.count == 0:
            continue
        report.histogram_rows.append(
            HistogramRow(
                name=name,
                count=hist.count,
                percentiles={
                    f"p{q}": histogram_percentile(hist, float(q))
                    for q in (50, 90, 99)
                },
            )
        )

    report.scenario_sweeps = scenario_rows(runs)
    report.drift = deterministic_drift(runs, metrics=deterministic_metrics)
    return report


# ----------------------------------------------------------------------
# Terminal rendering
# ----------------------------------------------------------------------
def render_text(report: RunReport, store_path: str = "") -> str:
    """Deterministic terminal summary with sparklines and flags."""
    where = f" in {store_path}" if store_path else ""
    if not report.runs:
        return f"repro report: no runs{where}"
    revs = [record.rev for record in report.runs]
    kinds = sorted({record.kind for record in report.runs})
    lines = [
        f"repro report: {len(report.runs)} runs{where} "
        f"(kinds: {', '.join(kinds)}; revs: {revs[0]} .. {revs[-1]})"
    ]
    if report.rows:
        lines.append(f"{'metric':<44} {'n':>3} {'last':>12}  trend")
        for row in report.rows:
            lines.append(
                f"{row.name:<44} {len(row.values):>3} {row.last:>12.6g}  "
                f"{sparkline(row.values)}"
                + ("  ⚠ MAD outlier" if row.flag else "")
            )
        for row in report.rows:
            if row.flag is not None:
                lines.append(f"  ⚠ {row.flag.message}")
    if report.histogram_rows:
        lines.append("histograms (log2-bin percentiles, merged across runs)")
        for hist in report.histogram_rows:
            ps = "  ".join(
                f"{k}={v:.6g}" for k, v in sorted(hist.percentiles.items())
            )
            lines.append(f"  {hist.name:<42} n={hist.count:<6} {ps}")
    if report.scenario_sweeps:
        lines.append(
            "chaos scenarios (overrun vs severity, latest run per severity)"
        )
        for sweep in report.scenario_sweeps:
            sev = "/".join(f"{s:g}" for s in sweep.severities)
            lines.append(
                f"  {sweep.name:<22} sev {sev:<14} "
                f"time {sparkline(sweep.time_overruns)} "
                f"+{sweep.time_overruns[-1]:,.1f}s  "
                f"cost {sparkline(sweep.cost_overruns)} "
                f"+${sweep.cost_overruns[-1]:.4f}"
            )
    profile_top = latest_profile_top(report.runs)
    if profile_top:
        lines.append("profile (latest run, self time per frame)")
        for frame in profile_top:
            lines.append(
                f"  {float(frame.get('self', 0.0)) * 1e3:>10.3f}ms "
                f"{int(frame.get('calls', 0)):>6} calls  "
                f"{frame.get('path', '')}"
            )
    if report.slo is not None:
        lines.extend(report.slo.render())
    if report.drift:
        lines.append(
            f"DETERMINISTIC DRIFT: {len(report.drift)} metric group(s) "
            f"changed under a fixed seed — this is a correctness bug"
        )
        for flag in report.drift:
            lines.append(f"  ✗ {flag.message}")
    else:
        lines.append("deterministic metrics: bit-stable across runs ✓")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# HTML dashboard (self-contained: inline CSS + SVG, no external assets)
# ----------------------------------------------------------------------
def _escape(text: object) -> str:
    return (
        str(text)
        .replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
        .replace('"', "&quot;")
    )


def _spark_svg(values: Sequence[float], width: int = 160, height: int = 36) -> str:
    """Inline SVG sparkline; native <title> tooltips carry the values."""
    if not values:
        return ""
    pad = 3
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    n = len(values)
    step = (width - 2 * pad) / max(1, n - 1)

    def xy(i: int, v: float) -> Tuple[float, float]:
        x = pad + i * step if n > 1 else width / 2.0
        y = height - pad - (v - lo) / span * (height - 2 * pad)
        return x, y

    points = " ".join(f"{x:.1f},{y:.1f}" for x, y in (xy(i, v) for i, v in enumerate(values)))
    lx, ly = xy(n - 1, values[-1])
    title = ", ".join(f"{v:.6g}" for v in values)
    return (
        f'<svg class="spark" role="img" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}">'
        f"<title>{_escape(title)}</title>"
        f'<polyline fill="none" stroke="var(--series-1)" stroke-width="2" '
        f'stroke-linecap="round" stroke-linejoin="round" points="{points}"/>'
        f'<circle cx="{lx:.1f}" cy="{ly:.1f}" r="3" fill="var(--series-1)"/>'
        f"</svg>"
    )


_HTML_STYLE = """
:root { color-scheme: light dark; }
.viz-root {
  --surface-1: #fcfcfb; --text-primary: #0b0b0b; --text-secondary: #52514e;
  --series-1: #2a78d6; --status-warning: #fab219; --status-critical: #d03b3b;
  --border: #e4e3df;
  background: var(--surface-1); color: var(--text-primary);
  font: 14px/1.5 system-ui, sans-serif; margin: 0; padding: 24px;
}
@media (prefers-color-scheme: dark) {
  .viz-root {
    --surface-1: #1a1a19; --text-primary: #ffffff;
    --text-secondary: #c3c2b7; --series-1: #3987e5; --border: #3a3a38;
  }
}
.viz-root h1 { font-size: 18px; margin: 0 0 4px; }
.viz-root h2 { font-size: 14px; margin: 24px 0 8px; }
.viz-root .sub { color: var(--text-secondary); margin: 0 0 16px; }
.viz-root table { border-collapse: collapse; width: 100%; max-width: 960px; }
.viz-root th, .viz-root td {
  text-align: left; padding: 6px 12px 6px 0;
  border-bottom: 1px solid var(--border);
  font-variant-numeric: tabular-nums;
}
.viz-root th { color: var(--text-secondary); font-weight: 600; }
.viz-root td.num { text-align: right; }
.viz-root .flag-warn::before { content: "\\26A0 "; }
.viz-root .flag-warn { color: var(--text-primary); }
.viz-root .flag-warn .chip, .viz-root .flag-drift .chip {
  display: inline-block; border-radius: 4px; padding: 0 6px;
  font-size: 12px; font-weight: 600;
}
.viz-root .flag-warn .chip { border: 2px solid var(--status-warning); }
.viz-root .flag-drift .chip {
  border: 2px solid var(--status-critical); color: var(--status-critical);
}
.viz-root tr.drift td { color: var(--status-critical); }
.viz-root .verdict { margin: 16px 0; font-weight: 600; }
.viz-root .verdict.bad { color: var(--status-critical); }
.viz-root .spark { vertical-align: middle; }
.viz-root .selfbar {
  display: inline-block; height: 10px; border-radius: 2px;
  background: var(--series-1); vertical-align: middle;
}
.viz-root td.frame { font-family: ui-monospace, monospace; font-size: 12px; }
"""


def render_html(report: RunReport, store_path: str = "") -> str:
    """Self-contained HTML dashboard over the store."""
    parts: List[str] = [
        "<!DOCTYPE html>",
        '<html><head><meta charset="utf-8">',
        "<title>repro report</title>",
        f"<style>{_HTML_STYLE}</style>",
        '</head><body class="viz-root">',
        "<h1>repro report</h1>",
    ]
    if not report.runs:
        parts.append(
            f'<p class="sub">no runs'
            f"{_escape(' in ' + store_path) if store_path else ''}</p>"
        )
        parts.append("</body></html>")
        return "\n".join(parts)

    parts.append(
        f'<p class="sub">{len(report.runs)} runs'
        + (f" in {_escape(store_path)}" if store_path else "")
        + "</p>"
    )
    drifted = {flag.metric for flag in report.drift}
    if report.drift:
        parts.append(
            f'<p class="verdict bad flag-drift"><span class="chip">'
            f"✗ deterministic drift</span> "
            f"{len(report.drift)} metric group(s) changed under a fixed "
            f"seed — correctness bug</p>"
        )
        parts.append("<ul>")
        for flag in report.drift:
            parts.append(
                f'<li class="flag-drift">{_escape(flag.message)}</li>'
            )
        parts.append("</ul>")
    else:
        parts.append(
            '<p class="verdict">deterministic metrics bit-stable '
            "across runs ✓</p>"
        )

    parts.append("<h2>Runs</h2><table>")
    parts.append(
        "<tr><th>#</th><th>timestamp (UTC)</th><th>kind</th><th>rev</th>"
        "<th>seed</th><th>scale</th><th>design</th></tr>"
    )
    for i, record in enumerate(report.runs):
        parts.append(
            f"<tr><td>{i}</td><td>{_escape(record.timestamp_utc)}</td>"
            f"<td>{_escape(record.kind)}</td><td>{_escape(record.rev)}</td>"
            f'<td class="num">{record.seed}</td>'
            f'<td class="num">{record.scale:g}</td>'
            f"<td>{_escape(record.labels.get('design', ''))}</td></tr>"
        )
    parts.append("</table>")

    if report.rows:
        parts.append("<h2>Metrics</h2><table>")
        parts.append(
            "<tr><th>metric</th><th>n</th><th>last</th><th>trend</th>"
            "<th>flag</th></tr>"
        )
        for row in report.rows:
            drift_row = row.name in drifted
            css = ' class="drift"' if drift_row else ""
            if drift_row:
                flag_cell = (
                    '<span class="flag-drift"><span class="chip">'
                    "✗ drift</span></span>"
                )
            elif row.flag is not None:
                flag_cell = (
                    f'<span class="flag-warn"><span class="chip">'
                    f"MAD outlier</span> {_escape(row.flag.message)}</span>"
                )
            else:
                flag_cell = ""
            parts.append(
                f"<tr{css}><td>{_escape(row.name)}</td>"
                f'<td class="num">{len(row.values)}</td>'
                f'<td class="num">{row.last:.6g}</td>'
                f"<td>{_spark_svg(row.values)}</td>"
                f"<td>{flag_cell}</td></tr>"
            )
        parts.append("</table>")

    if report.histogram_rows:
        parts.append("<h2>Histograms</h2><table>")
        parts.append(
            "<tr><th>histogram</th><th>n</th><th>p50</th><th>p90</th>"
            "<th>p99</th></tr>"
        )
        for hist in report.histogram_rows:
            parts.append(
                f"<tr><td>{_escape(hist.name)}</td>"
                f'<td class="num">{hist.count}</td>'
                + "".join(
                    f'<td class="num">{hist.percentiles[key]:.6g}</td>'
                    for key in ("p50", "p90", "p99")
                )
                + "</tr>"
            )
        parts.append("</table>")

    if report.scenario_sweeps:
        parts.append("<h2>Chaos scenarios</h2><table>")
        parts.append(
            "<tr><th>scenario</th><th>severities</th>"
            "<th>time overrun</th><th>last</th>"
            "<th>cost overrun</th><th>last</th></tr>"
        )
        for sweep in report.scenario_sweeps:
            sev = "/".join(f"{s:g}" for s in sweep.severities)
            parts.append(
                f"<tr><td>{_escape(sweep.name)}</td>"
                f"<td>{_escape(sev)}</td>"
                f"<td>{_spark_svg(sweep.time_overruns)}</td>"
                f'<td class="num">+{sweep.time_overruns[-1]:,.1f}s</td>'
                f"<td>{_spark_svg(sweep.cost_overruns)}</td>"
                f'<td class="num">+${sweep.cost_overruns[-1]:.4f}</td></tr>'
            )
        parts.append("</table>")

    if report.slo is not None:
        slo = report.slo
        verdict = "VIOLATED" if slo.violated else "ok"
        parts.append(
            f"<h2>SLO: {_escape(slo.spec.name)} ({verdict})</h2><table>"
        )
        parts.append(
            "<tr><th>objective</th><th>type</th><th>value</th>"
            "<th>target</th><th>burn</th><th>burn per window</th>"
            "<th>verdict</th></tr>"
        )
        for result in slo.results:
            if result.no_data:
                verdict_cell = "pass (no data)"
            elif result.passed:
                verdict_cell = "pass"
            else:
                verdict_cell = (
                    '<span class="flag-drift"><span class="chip">'
                    "✗ violated</span></span>"
                )
            value = "-" if result.value is None else f"{result.value:.6g}"
            burn = "-" if result.burn is None else f"{result.burn:.3f}"
            # Sparkline over burn per window; empty windows plot as 0.
            burns = [b if b is not None else 0.0 for b in result.windows]
            parts.append(
                f"<tr><td>{_escape(result.name)}</td>"
                f"<td>{_escape(result.type)}</td>"
                f'<td class="num">{value}</td>'
                f'<td class="num">{result.target:.6g}</td>'
                f'<td class="num">{burn}</td>'
                f"<td>{_spark_svg(burns)}</td>"
                f"<td>{verdict_cell}</td></tr>"
            )
        parts.append("</table>")

    profile_top = latest_profile_top(report.runs)
    if profile_top:
        parts.append("<h2>Profile (latest run)</h2><table>")
        parts.append(
            "<tr><th>frame</th><th>calls</th><th>self</th><th></th></tr>"
        )
        max_self = max(float(f.get("self", 0.0)) for f in profile_top) or 1.0
        for frame in profile_top:
            self_time = float(frame.get("self", 0.0))
            width = max(2, int(160 * self_time / max_self))
            parts.append(
                f'<tr><td class="frame">{_escape(frame.get("path", ""))}</td>'
                f'<td class="num">{int(frame.get("calls", 0))}</td>'
                f'<td class="num">{self_time * 1e3:.3f}ms</td>'
                f'<td><span class="selfbar" style="width:{width}px"></span>'
                f"</td></tr>"
            )
        parts.append("</table>")

    parts.append("</body></html>")
    return "\n".join(parts)
