"""Declarative SLOs evaluated deterministically over the run store.

A spec is a small JSON document (schema :data:`SLO_SCHEMA`) naming the
run-kind it governs and a list of objectives; :func:`evaluate_slo` runs
it against stored :class:`~repro.obs.store.RunRecord` documents and
produces an :class:`SLOReport` whose serialized form is **timestamp-free
and byte-identical** for identical inputs — the CI smoke job ``cmp``\\ s
two same-seed evaluations.

Objective types
---------------

``ratio``
    Fraction of records whose boolean label (``labels[label]``, e.g.
    ``met_deadline``) is true, among records carrying the label at all.
    ``objective`` is the minimum acceptable fraction, in ``[0, 1)`` so
    the error budget ``1 - objective`` is never empty.  Burn is the
    fraction of that budget consumed: ``(1 - value) / (1 - objective)``.
``latency``
    A percentile read from a named histogram merged across the records
    (:func:`~repro.obs.store.merged_histogram` +
    :func:`~repro.obs.store.histogram_percentile`).  ``threshold`` is
    the maximum acceptable value; burn is ``value / threshold``.
``cost``
    Sum of a scalar metric (counter first, then gauge) across records.
    ``budget`` is the allowed total; burn is ``value / budget``.

For every type **burn > 1 is exactly the violation condition** — the
``slo`` fuzz oracle replays that equivalence.  An objective with no
matching data passes vacuously with ``no_data`` set: an empty window has
spent none of its error budget, and a missing metric is a coverage gap
for the spec author to see, not a paging event.

Error-budget burn windows
-------------------------

``window`` splits the filtered records into consecutive chunks of that
many records (the last chunk may be short); each objective reports its
burn per window, which the report renderer draws as a sparkline.  The
windows always partition the record list — another oracle-checked
invariant.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .store import (
    EmptyHistogramError,
    RunRecord,
    filter_runs,
    histogram_percentile,
    merged_histogram,
    metric_value,
)

__all__ = [
    "SLO_SCHEMA",
    "OBJECTIVE_TYPES",
    "SLOError",
    "SLOSpecError",
    "SLOObjective",
    "SLOSpec",
    "ObjectiveResult",
    "SLOReport",
    "parse_slo_spec",
    "load_slo_spec",
    "evaluate_slo",
    "burn_sparkline",
]

#: Schema tag every spec document must carry.
SLO_SCHEMA = "repro-slo/1"

#: Recognized objective types.
OBJECTIVE_TYPES = ("ratio", "latency", "cost")

_SPARK_BLOCKS = "▁▂▃▄▅▆▇█"


class SLOError(Exception):
    """Base class for SLO-engine failures."""


class SLOSpecError(SLOError):
    """The spec document is malformed (named error, never a KeyError)."""


@dataclass(frozen=True)
class SLOObjective:
    """One validated objective from a spec document."""

    name: str
    type: str
    #: ``ratio``: the boolean record label to read.
    label: Optional[str] = None
    #: ``latency``/``cost``: the histogram / scalar metric to read.
    metric: Optional[str] = None
    #: ``ratio``: minimum acceptable fraction, in ``[0, 1)``.
    objective: Optional[float] = None
    #: ``latency``: which percentile to read (0..100].
    percentile: Optional[float] = None
    #: ``latency``: maximum acceptable percentile value (> 0).
    threshold: Optional[float] = None
    #: ``cost``: allowed metric total (> 0).
    budget: Optional[float] = None

    def to_dict(self) -> dict:
        out: Dict[str, object] = {"name": self.name, "type": self.type}
        for key in (
            "label", "metric", "objective", "percentile", "threshold",
            "budget",
        ):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        return out


@dataclass(frozen=True)
class SLOSpec:
    """One validated spec: a run-kind filter plus objectives."""

    name: str
    kind: str
    objectives: Tuple[SLOObjective, ...]

    def to_dict(self) -> dict:
        return {
            "schema": SLO_SCHEMA,
            "name": self.name,
            "kind": self.kind,
            "objectives": [o.to_dict() for o in self.objectives],
        }


def _require(doc: dict, key: str, where: str):
    if key not in doc:
        raise SLOSpecError(f"{where} is missing required field {key!r}")
    return doc[key]


def _parse_objective(doc: dict, index: int) -> SLOObjective:
    where = f"objective #{index}"
    if not isinstance(doc, dict):
        raise SLOSpecError(f"{where} must be an object, got {type(doc).__name__}")
    name = str(_require(doc, "name", where))
    where = f"objective {name!r}"
    otype = str(_require(doc, "type", where))
    if otype not in OBJECTIVE_TYPES:
        raise SLOSpecError(
            f"{where} has unknown type {otype!r}; known: "
            f"{', '.join(OBJECTIVE_TYPES)}"
        )
    known = {
        "name", "type", "label", "metric", "objective", "percentile",
        "threshold", "budget",
    }
    extra = sorted(set(doc) - known)
    if extra:
        raise SLOSpecError(f"{where} has unknown fields: {', '.join(extra)}")
    if otype == "ratio":
        label = str(_require(doc, "label", where))
        objective = float(_require(doc, "objective", where))
        if not 0.0 <= objective < 1.0:
            raise SLOSpecError(
                f"{where}: ratio objective must be in [0, 1) so the error "
                f"budget 1 - objective is non-empty, got {objective!r}"
            )
        return SLOObjective(
            name=name, type=otype, label=label, objective=objective
        )
    if otype == "latency":
        metric = str(_require(doc, "metric", where))
        percentile = float(doc.get("percentile", 99.0))
        if not 0.0 < percentile <= 100.0:
            raise SLOSpecError(
                f"{where}: percentile must be in (0, 100], got {percentile!r}"
            )
        threshold = float(_require(doc, "threshold", where))
        if threshold <= 0.0:
            raise SLOSpecError(
                f"{where}: threshold must be positive, got {threshold!r}"
            )
        return SLOObjective(
            name=name,
            type=otype,
            metric=metric,
            percentile=percentile,
            threshold=threshold,
        )
    # cost
    metric = str(_require(doc, "metric", where))
    budget = float(_require(doc, "budget", where))
    if budget <= 0.0:
        raise SLOSpecError(
            f"{where}: budget must be positive, got {budget!r}"
        )
    return SLOObjective(name=name, type=otype, metric=metric, budget=budget)


def parse_slo_spec(doc: dict) -> SLOSpec:
    """Validate one spec document; raises :class:`SLOSpecError`."""
    if not isinstance(doc, dict):
        raise SLOSpecError(
            f"SLO spec must be a JSON object, got {type(doc).__name__}"
        )
    schema = doc.get("schema")
    if schema != SLO_SCHEMA:
        raise SLOSpecError(
            f"SLO spec schema mismatch: expected {SLO_SCHEMA!r}, got "
            f"{schema!r}"
        )
    name = str(_require(doc, "name", "SLO spec"))
    kind = str(_require(doc, "kind", "SLO spec"))
    raw = _require(doc, "objectives", "SLO spec")
    if not isinstance(raw, list) or not raw:
        raise SLOSpecError("SLO spec objectives must be a non-empty list")
    objectives = tuple(
        _parse_objective(item, index) for index, item in enumerate(raw)
    )
    names = [o.name for o in objectives]
    if len(set(names)) != len(names):
        raise SLOSpecError("SLO spec objective names must be unique")
    return SLOSpec(name=name, kind=kind, objectives=objectives)


def load_slo_spec(path: str) -> SLOSpec:
    """Load and validate a spec file; raises :class:`SLOSpecError`."""
    try:
        with open(path) as handle:
            doc = json.load(handle)
    except OSError as exc:
        raise SLOSpecError(f"cannot read SLO spec {path}: {exc}") from None
    except ValueError as exc:
        raise SLOSpecError(
            f"SLO spec {path} is not valid JSON: {exc}"
        ) from None
    return parse_slo_spec(doc)


# ----------------------------------------------------------------------
# Evaluation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ObjectiveResult:
    """One objective's verdict over the whole record window."""

    name: str
    type: str
    #: Measured value (ratio, percentile, or metric total); ``None`` when
    #: no record carried the data.
    value: Optional[float]
    #: The spec's acceptable bound (objective/threshold/budget).
    target: float
    #: Error-budget burn; ``burn > 1`` is exactly "violated".
    burn: Optional[float]
    passed: bool
    no_data: bool
    #: Burn per record window (empty when ``window`` was not requested).
    windows: Tuple[Optional[float], ...] = ()

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "type": self.type,
            "value": self.value,
            "target": self.target,
            "burn": self.burn,
            "passed": self.passed,
            "no_data": self.no_data,
            "windows": list(self.windows),
        }


@dataclass(frozen=True)
class SLOReport:
    """Deterministic evaluation document for one spec over one store view.

    Contains no timestamps and no machine state: identical records in,
    identical bytes out (:meth:`to_json`).
    """

    spec: SLOSpec
    records: int
    window: int
    results: Tuple[ObjectiveResult, ...]

    @property
    def violated(self) -> bool:
        return any(not r.passed for r in self.results)

    def to_dict(self) -> dict:
        return {
            "schema": "repro-slo-report/1",
            "spec": self.spec.to_dict(),
            "records": self.records,
            "window": self.window,
            "violated": self.violated,
            "results": [r.to_dict() for r in self.results],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"

    def render(self) -> List[str]:
        """Human-readable evaluation lines (also byte-deterministic)."""
        lines = [
            f"SLO {self.spec.name!r} over {self.records} {self.spec.kind!r} "
            f"record(s): {'VIOLATED' if self.violated else 'ok'}"
        ]
        for r in self.results:
            verdict = "pass" if r.passed else "FAIL"
            if r.no_data:
                verdict = "pass (no data)"
            value = "-" if r.value is None else f"{r.value:.6g}"
            burn = "-" if r.burn is None else f"{r.burn:.3f}"
            line = (
                f"  [{verdict:>14s}] {r.name}: {r.type} value={value} "
                f"target={r.target:.6g} burn={burn}"
            )
            if r.windows:
                line += f" {burn_sparkline(r.windows)}"
            lines.append(line)
        return lines


def burn_sparkline(values: Sequence[Optional[float]]) -> str:
    """Unicode sparkline of per-window burns, scaled so burn=1 is the
    top block — a full-height bar means the window ate its whole budget.
    Windows with no data render as ``·``."""
    out = []
    for value in values:
        if value is None:
            out.append("·")
            continue
        scaled = min(1.0, max(0.0, value))
        out.append(_SPARK_BLOCKS[int(scaled * (len(_SPARK_BLOCKS) - 1))])
    return "".join(out)


def _eval_ratio(
    objective: SLOObjective, records: Sequence[RunRecord]
) -> Tuple[Optional[float], Optional[float]]:
    hits = 0
    covered = 0
    for record in records:
        flag = record.labels.get(objective.label)
        if flag is None:
            continue
        covered += 1
        if bool(flag):
            hits += 1
    if covered == 0:
        return None, None
    value = hits / covered
    return value, (1.0 - value) / (1.0 - objective.objective)


def _eval_latency(
    objective: SLOObjective, records: Sequence[RunRecord]
) -> Tuple[Optional[float], Optional[float]]:
    hist = merged_histogram(records, objective.metric)
    if hist is None:
        return None, None
    try:
        value = histogram_percentile(hist, objective.percentile)
    except EmptyHistogramError:
        return None, None
    return value, value / objective.threshold


def _eval_cost(
    objective: SLOObjective, records: Sequence[RunRecord]
) -> Tuple[Optional[float], Optional[float]]:
    total = 0.0
    covered = 0
    for record in records:
        value = metric_value(record, objective.metric)
        if value is None:
            continue
        covered += 1
        total += value
    if covered == 0:
        return None, None
    return total, total / objective.budget


_EVALUATORS = {
    "ratio": _eval_ratio,
    "latency": _eval_latency,
    "cost": _eval_cost,
}


def evaluate_slo(
    spec: SLOSpec,
    runs: Sequence[RunRecord],
    rev: Optional[str] = None,
    window: int = 0,
) -> SLOReport:
    """Evaluate ``spec`` over ``runs`` (filtered to the spec's kind).

    ``window > 0`` additionally reports each objective's burn over
    consecutive chunks of ``window`` records.  Pure function of its
    inputs — no clocks, no environment.
    """
    if window < 0:
        raise SLOError(f"window must be >= 0, got {window}")
    records = filter_runs(runs, kinds=[spec.kind], rev=rev)
    chunks: List[List[RunRecord]] = []
    if window > 0:
        for start in range(0, len(records), window):
            chunks.append(records[start:start + window])
    results = []
    for objective in spec.objectives:
        evaluator = _EVALUATORS[objective.type]
        value, burn = evaluator(objective, records)
        target = (
            objective.objective
            if objective.type == "ratio"
            else objective.threshold
            if objective.type == "latency"
            else objective.budget
        )
        window_burns = tuple(
            evaluator(objective, chunk)[1] for chunk in chunks
        )
        results.append(
            ObjectiveResult(
                name=objective.name,
                type=objective.type,
                value=value,
                target=float(target),
                burn=burn,
                passed=(burn is None or burn <= 1.0),
                no_data=(burn is None),
                windows=window_burns,
            )
        )
    return SLOReport(
        spec=spec,
        records=len(records),
        window=window,
        results=tuple(results),
    )
