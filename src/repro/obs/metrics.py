"""Process-local metrics: counters, gauges, log-scale histograms.

No numpy, no background threads — a :class:`MetricsRegistry` is a dict of
named instruments, and a :class:`MetricsSnapshot` is an immutable copy
that supports ``==``, JSON export, and :func:`merge_snapshots`.  The
algebra the property tests assert:

* histogram bin counts always sum to the observation count,
* ``merge_snapshots(snap(a), snap(b)) == snap(a then b)`` for counters
  and histograms (sums) and gauges (last write wins).

Histogram bins are *fixed* powers of two: observation ``v > 0`` lands in
bin ``floor(log2(v))`` (i.e. ``[2**i, 2**(i+1))``), clamped to
``[MIN_BIN, MAX_BIN]``; non-positive observations land in
:data:`ZERO_BIN`.  Fixed bins make snapshots from different processes
mergeable without rebinning.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "MetricsRegistry",
    "MetricsSnapshot",
    "merge_snapshots",
    "snapshot_from_dict",
    "histogram_bin",
    "bin_bounds",
    "get_metrics",
    "set_metrics",
    "ZERO_BIN",
    "MIN_BIN",
    "MAX_BIN",
]

#: Bin index reserved for observations <= 0.
ZERO_BIN = -1025
#: Smallest/largest power-of-two exponent before clamping.
MIN_BIN = -64
MAX_BIN = 64


def histogram_bin(value: float) -> int:
    """Fixed log2 bin index for ``value`` (see module docstring)."""
    if value <= 0.0 or math.isnan(value):
        return ZERO_BIN
    if math.isinf(value):
        return MAX_BIN
    return min(max(int(math.floor(math.log2(value))), MIN_BIN), MAX_BIN)


def bin_bounds(index: int) -> Tuple[float, float]:
    """The ``[lo, hi)`` value range of one bin index."""
    if index == ZERO_BIN:
        return (float("-inf"), 0.0)
    lo = 2.0 ** index if index > MIN_BIN else 0.0
    hi = 2.0 ** (index + 1) if index < MAX_BIN else float("inf")
    return (lo, hi)


class Counter:
    """Monotonically increasing sum."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        self.value += amount


class Gauge:
    """Last-written value."""

    __slots__ = ("value", "written")

    def __init__(self):
        self.value = 0.0
        self.written = False

    def set(self, value: float) -> None:
        self.value = float(value)
        self.written = True


class Histogram:
    """Log2-binned distribution with count/sum/min/max."""

    __slots__ = ("bins", "count", "total", "min", "max")

    def __init__(self):
        self.bins: Dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        index = histogram_bin(value)
        self.bins[index] = self.bins.get(index, 0) + 1
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)


@dataclass(frozen=True)
class HistogramSnapshot:
    """Immutable histogram state; ``bins`` is sorted for stable equality."""

    count: int
    total: float
    min: Optional[float]
    max: Optional[float]
    bins: Tuple[Tuple[int, int], ...]

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "bins": {str(index): count for index, count in self.bins},
        }


@dataclass(frozen=True)
class MetricsSnapshot:
    """Point-in-time copy of a registry (hashable-free but ``==``-able)."""

    counters: Dict[str, float] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    histograms: Dict[str, HistogramSnapshot] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """Sorted-key dict for JSON export (deterministic bytes)."""
        return {
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "gauges": {k: self.gauges[k] for k in sorted(self.gauges)},
            "histograms": {
                k: self.histograms[k].to_dict()
                for k in sorted(self.histograms)
            },
        }


class MetricsRegistry:
    """Named instruments, get-or-create by kind."""

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def _check_free(self, name: str, kind: str) -> None:
        for other_kind, table in (
            ("counter", self._counters),
            ("gauge", self._gauges),
            ("histogram", self._histograms),
        ):
            if other_kind != kind and name in table:
                raise ValueError(
                    f"metric {name!r} already registered as a {other_kind}"
                )

    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._check_free(name, "counter")
            self._counters[name] = Counter()
        return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        if name not in self._gauges:
            self._check_free(name, "gauge")
            self._gauges[name] = Gauge()
        return self._gauges[name]

    def histogram(self, name: str) -> Histogram:
        if name not in self._histograms:
            self._check_free(name, "histogram")
            self._histograms[name] = Histogram()
        return self._histograms[name]

    def snapshot(self) -> MetricsSnapshot:
        return MetricsSnapshot(
            counters={k: c.value for k, c in self._counters.items()},
            gauges={
                k: g.value for k, g in self._gauges.items() if g.written
            },
            histograms={
                k: HistogramSnapshot(
                    count=h.count,
                    total=h.total,
                    min=h.min,
                    max=h.max,
                    bins=tuple(sorted(h.bins.items())),
                )
                for k, h in self._histograms.items()
            },
        )

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


def merge_snapshots(a: MetricsSnapshot, b: MetricsSnapshot) -> MetricsSnapshot:
    """Combine two snapshots as if their registries had been one.

    Counters and histograms add; gauges take ``b``'s value when it wrote
    one (last write wins, matching sequential registry semantics).
    """
    counters = dict(a.counters)
    for name, value in b.counters.items():
        counters[name] = counters.get(name, 0.0) + value
    gauges = dict(a.gauges)
    gauges.update(b.gauges)
    histograms = dict(a.histograms)
    for name, hb in b.histograms.items():
        ha = histograms.get(name)
        if ha is None:
            histograms[name] = hb
            continue
        bins: Dict[int, int] = dict(ha.bins)
        for index, count in hb.bins:
            bins[index] = bins.get(index, 0) + count
        histograms[name] = HistogramSnapshot(
            count=ha.count + hb.count,
            total=ha.total + hb.total,
            min=(
                hb.min
                if ha.min is None
                else ha.min if hb.min is None else min(ha.min, hb.min)
            ),
            max=(
                hb.max
                if ha.max is None
                else ha.max if hb.max is None else max(ha.max, hb.max)
            ),
            bins=tuple(sorted(bins.items())),
        )
    return MetricsSnapshot(
        counters=counters, gauges=gauges, histograms=histograms
    )


def snapshot_from_dict(doc: dict) -> MetricsSnapshot:
    """Inverse of :meth:`MetricsSnapshot.to_dict` (JSON round-trip).

    The run store persists snapshots as JSON; this rebuilds the typed
    form so stored runs can be merged and queried with the same algebra
    as live registries.
    """
    histograms: Dict[str, HistogramSnapshot] = {}
    for name, h in doc.get("histograms", {}).items():
        histograms[name] = HistogramSnapshot(
            count=int(h["count"]),
            total=float(h["total"]),
            min=h.get("min"),
            max=h.get("max"),
            bins=tuple(
                sorted((int(k), int(v)) for k, v in h.get("bins", {}).items())
            ),
        )
    return MetricsSnapshot(
        counters={k: float(v) for k, v in doc.get("counters", {}).items()},
        gauges={k: float(v) for k, v in doc.get("gauges", {}).items()},
        histograms=histograms,
    )


# ----------------------------------------------------------------------
# Process-global registry (always on; instruments are dict-lookup cheap)
# ----------------------------------------------------------------------
_global_metrics = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The process-global registry the instrumented modules report to."""
    return _global_metrics


def set_metrics(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` as the global one; returns the previous one."""
    global _global_metrics
    previous = _global_metrics
    _global_metrics = registry
    return previous
