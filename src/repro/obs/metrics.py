"""Process-local metrics: counters, gauges, log-scale histograms.

No numpy, no background threads — a :class:`MetricsRegistry` is a dict of
named instruments, and a :class:`MetricsSnapshot` is an immutable copy
that supports ``==``, JSON export, and :func:`merge_snapshots`.  The
algebra the property tests assert:

* histogram bin counts always sum to the observation count,
* ``merge_snapshots(snap(a), snap(b)) == snap(a then b)`` for counters
  and histograms (sums) and gauges (last write wins).

Histogram bins are *fixed* powers of two: observation ``v > 0`` lands in
bin ``floor(log2(v))`` (i.e. ``[2**i, 2**(i+1))``), clamped to
``[MIN_BIN, MAX_BIN]``; non-positive observations land in
:data:`ZERO_BIN`.  Fixed bins make snapshots from different processes
mergeable without rebinning.

**Labels.** Instruments optionally carry a frozen, sorted label set
(``registry.counter("jobs", region="east", priority="high")``).  Labels
are encoded *into the instrument name* as a canonical
``name{key="value",...}`` suffix (keys sorted, values escaped), so the
snapshot/merge/serialization algebra above is untouched: a labeled
series is just another name, snapshots stay plain string-keyed dicts,
and byte-stability is inherited.  :func:`labeled_name` /
:func:`parse_labeled_name` convert between the two forms; the
OpenMetrics exporter in :mod:`repro.obs.export` re-parses them into
proper label sets on the wire.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "LabelError",
    "MetricsRegistry",
    "MetricsSnapshot",
    "merge_snapshots",
    "snapshot_from_dict",
    "histogram_bin",
    "bin_bounds",
    "labeled_name",
    "parse_labeled_name",
    "get_metrics",
    "set_metrics",
    "ZERO_BIN",
    "MIN_BIN",
    "MAX_BIN",
]

#: Bin index reserved for observations <= 0.
ZERO_BIN = -1025
#: Smallest/largest power-of-two exponent before clamping.
MIN_BIN = -64
MAX_BIN = 64


def histogram_bin(value: float) -> int:
    """Fixed log2 bin index for ``value`` (see module docstring)."""
    if value <= 0.0 or math.isnan(value):
        return ZERO_BIN
    if math.isinf(value):
        return MAX_BIN
    return min(max(int(math.floor(math.log2(value))), MIN_BIN), MAX_BIN)


def bin_bounds(index: int) -> Tuple[float, float]:
    """The ``[lo, hi)`` value range of one bin index."""
    if index == ZERO_BIN:
        return (float("-inf"), 0.0)
    lo = 2.0 ** index if index > MIN_BIN else 0.0
    hi = 2.0 ** (index + 1) if index < MAX_BIN else float("inf")
    return (lo, hi)


# ----------------------------------------------------------------------
# Labels (canonically encoded into the instrument name)
# ----------------------------------------------------------------------
class LabelError(ValueError):
    """A label key or encoded series name is malformed."""


_LABEL_KEY_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_SERIES_RE = re.compile(r"^(?P<name>[^{}]+)\{(?P<labels>.*)\}$")
_LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _unescape_label_value(value: str) -> str:
    out = []
    it = iter(value)
    for ch in it:
        if ch != "\\":
            out.append(ch)
            continue
        nxt = next(it, "")
        out.append({"n": "\n", '"': '"', "\\": "\\"}.get(nxt, nxt))
    return "".join(out)


def labeled_name(name: str, labels: Mapping[str, object]) -> str:
    """Canonical series key: ``name{k="v",...}`` with sorted keys.

    Sorting makes the encoding independent of keyword order, so
    ``counter("x", a=1, b=2)`` and ``counter("x", b=2, a=1)`` are the
    same series — the frozen-sorted-label-set contract.
    """
    if not labels:
        return name
    if "{" in name or "}" in name:
        raise LabelError(f"metric name {name!r} may not contain braces")
    for key in labels:
        if not _LABEL_KEY_RE.match(key):
            raise LabelError(f"invalid label key {key!r}")
    body = ",".join(
        f'{key}="{_escape_label_value(str(labels[key]))}"'
        for key in sorted(labels)
    )
    return f"{name}{{{body}}}"


def parse_labeled_name(series: str) -> Tuple[str, Tuple[Tuple[str, str], ...]]:
    """Inverse of :func:`labeled_name`: ``(base_name, sorted_label_pairs)``.

    Unlabeled names return an empty pair tuple.  Raises
    :class:`LabelError` when the label block does not re-serialize to the
    canonical form (unsorted keys, bad quoting, stray braces).
    """
    if "{" not in series:
        if "}" in series:
            raise LabelError(f"malformed series name {series!r}")
        return series, ()
    match = _SERIES_RE.match(series)
    if match is None:
        raise LabelError(f"malformed series name {series!r}")
    name, body = match.group("name"), match.group("labels")
    pairs: Dict[str, str] = {}
    pos = 0
    while pos < len(body):
        pair = _LABEL_PAIR_RE.match(body, pos)
        if pair is None:
            raise LabelError(f"malformed label block in {series!r}")
        pairs[pair.group(1)] = _unescape_label_value(pair.group(2))
        pos = pair.end()
        if pos < len(body):
            if body[pos] != ",":
                raise LabelError(f"malformed label block in {series!r}")
            pos += 1
    if labeled_name(name, pairs) != series:
        raise LabelError(f"non-canonical series name {series!r}")
    return name, tuple(sorted(pairs.items()))


class Counter:
    """Monotonically increasing sum."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        self.value += amount


class Gauge:
    """Last-written value."""

    __slots__ = ("value", "written")

    def __init__(self):
        self.value = 0.0
        self.written = False

    def set(self, value: float) -> None:
        self.value = float(value)
        self.written = True


class Histogram:
    """Log2-binned distribution with count/sum/min/max."""

    __slots__ = ("bins", "count", "total", "min", "max")

    def __init__(self):
        self.bins: Dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        index = histogram_bin(value)
        self.bins[index] = self.bins.get(index, 0) + 1
        self.count += 1
        if math.isnan(value):
            # A NaN lands in ZERO_BIN and is counted, but must not touch
            # the moment fields: NaN propagates through += and poisons
            # min/max via always-false comparisons.
            return
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)


@dataclass(frozen=True)
class HistogramSnapshot:
    """Immutable histogram state; ``bins`` is sorted for stable equality."""

    count: int
    total: float
    min: Optional[float]
    max: Optional[float]
    bins: Tuple[Tuple[int, int], ...]

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "bins": {str(index): count for index, count in self.bins},
        }


@dataclass(frozen=True)
class MetricsSnapshot:
    """Point-in-time copy of a registry (hashable-free but ``==``-able)."""

    counters: Dict[str, float] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    histograms: Dict[str, HistogramSnapshot] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """Sorted-key dict for JSON export (deterministic bytes)."""
        return {
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "gauges": {k: self.gauges[k] for k in sorted(self.gauges)},
            "histograms": {
                k: self.histograms[k].to_dict()
                for k in sorted(self.histograms)
            },
        }


class MetricsRegistry:
    """Named instruments, get-or-create by kind.

    Instruments accept an optional label set as keyword arguments
    (``registry.counter("jobs", region="east")``); each distinct label
    combination is its own series, keyed by the canonical
    :func:`labeled_name` string.  A base name is bound to a single
    instrument kind across all of its label sets, so one OpenMetrics
    family never mixes types.
    """

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        # Base name -> instrument kind, enforced across label sets.
        self._kinds: Dict[str, str] = {}

    def _check_free(self, name: str, kind: str) -> None:
        base, _ = parse_labeled_name(name)
        bound = self._kinds.get(base)
        if bound is not None and bound != kind:
            raise ValueError(
                f"metric {base!r} already registered as a {bound}"
            )
        self._kinds[base] = kind

    def counter(self, name: str, **labels) -> Counter:
        name = labeled_name(name, labels)
        if name not in self._counters:
            self._check_free(name, "counter")
            self._counters[name] = Counter()
        return self._counters[name]

    def gauge(self, name: str, **labels) -> Gauge:
        name = labeled_name(name, labels)
        if name not in self._gauges:
            self._check_free(name, "gauge")
            self._gauges[name] = Gauge()
        return self._gauges[name]

    def histogram(self, name: str, **labels) -> Histogram:
        name = labeled_name(name, labels)
        if name not in self._histograms:
            self._check_free(name, "histogram")
            self._histograms[name] = Histogram()
        return self._histograms[name]

    def snapshot(self) -> MetricsSnapshot:
        return MetricsSnapshot(
            counters={k: c.value for k, c in self._counters.items()},
            gauges={
                k: g.value for k, g in self._gauges.items() if g.written
            },
            histograms={
                k: HistogramSnapshot(
                    count=h.count,
                    total=h.total,
                    min=h.min,
                    max=h.max,
                    bins=tuple(sorted(h.bins.items())),
                )
                for k, h in self._histograms.items()
            },
        )

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self._kinds.clear()


def merge_snapshots(a: MetricsSnapshot, b: MetricsSnapshot) -> MetricsSnapshot:
    """Combine two snapshots as if their registries had been one.

    Counters and histograms add; gauges take ``b``'s value when it wrote
    one (last write wins, matching sequential registry semantics).

    The gauge rule is the pinned contract for conflicting series names —
    ``merge_snapshots(a, b)`` never raises on a gauge collision, it keeps
    ``b``'s value, and the operation is deliberately *not* commutative
    for gauges (it is for counters and histograms).  Labeled series make
    same-name collisions far more common (every shard exports
    ``up{region=...}``-style gauges), so merge order is part of the API:
    merge in observation order and the result matches one sequential
    registry byte-for-byte.
    """
    counters = dict(a.counters)
    for name, value in b.counters.items():
        counters[name] = counters.get(name, 0.0) + value
    gauges = dict(a.gauges)
    gauges.update(b.gauges)
    histograms = dict(a.histograms)
    for name, hb in b.histograms.items():
        ha = histograms.get(name)
        if ha is None:
            histograms[name] = hb
            continue
        bins: Dict[int, int] = dict(ha.bins)
        for index, count in hb.bins:
            bins[index] = bins.get(index, 0) + count
        histograms[name] = HistogramSnapshot(
            count=ha.count + hb.count,
            total=ha.total + hb.total,
            min=(
                hb.min
                if ha.min is None
                else ha.min if hb.min is None else min(ha.min, hb.min)
            ),
            max=(
                hb.max
                if ha.max is None
                else ha.max if hb.max is None else max(ha.max, hb.max)
            ),
            bins=tuple(sorted(bins.items())),
        )
    return MetricsSnapshot(
        counters=counters, gauges=gauges, histograms=histograms
    )


def snapshot_from_dict(doc: dict) -> MetricsSnapshot:
    """Inverse of :meth:`MetricsSnapshot.to_dict` (JSON round-trip).

    The run store persists snapshots as JSON; this rebuilds the typed
    form so stored runs can be merged and queried with the same algebra
    as live registries.
    """
    histograms: Dict[str, HistogramSnapshot] = {}
    for name, h in doc.get("histograms", {}).items():
        histograms[name] = HistogramSnapshot(
            count=int(h["count"]),
            total=float(h["total"]),
            min=h.get("min"),
            max=h.get("max"),
            bins=tuple(
                sorted((int(k), int(v)) for k, v in h.get("bins", {}).items())
            ),
        )
    return MetricsSnapshot(
        counters={k: float(v) for k, v in doc.get("counters", {}).items()},
        gauges={k: float(v) for k, v in doc.get("gauges", {}).items()},
        histograms=histograms,
    )


# ----------------------------------------------------------------------
# Process-global registry (always on; instruments are dict-lookup cheap)
# ----------------------------------------------------------------------
_global_metrics = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The process-global registry the instrumented modules report to."""
    return _global_metrics


def set_metrics(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` as the global one; returns the previous one."""
    global _global_metrics
    previous = _global_metrics
    _global_metrics = registry
    return previous
