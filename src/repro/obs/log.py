"""Structured, span-correlated logging with a bounded flight recorder.

The third leg of ``repro.obs``: spans say *where time went*, metrics say
*how much happened*, and log records say *what happened, in order*.  A
:class:`LogRecord` carries a level, a message, free-form key/value
fields, and the id of the span that was open when it was emitted, so a
record stream can be joined back onto the trace.

The :class:`Logger` is a **flight recorder**: records land in a bounded
ring buffer (``collections.deque(maxlen=capacity)``), so a long run
keeps only the most recent window — exactly the records that explain a
crash.  On any unhandled exception inside :func:`crash_scope` (the plan
executor, the fuzz driver, and GCN training all run inside one) the
recorder's tail, the open-span stack at the moment of the raise, and a
metric snapshot are dumped to a replayable ``repro-crash/1`` JSON
document whose path is printed next to the failing seed.

Determinism contract (mirrors the tracer's): ``Logger(deterministic=
True)`` stamps records with its own counting :class:`TickClock` —
*separate* from the tracer's, so logging never perturbs golden traces —
and crash documents are written with sorted keys, so two runs of the
same seeded workload produce byte-identical dumps.

Like the tracer, the process-global logger starts **disabled**:
instrumented hot paths pay one attribute check per call, and
:func:`crash_scope` writes nothing unless a run opted into recording.
"""

from __future__ import annotations

import json
import os
import sys
import threading
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional

from .metrics import MetricsRegistry, get_metrics
from .spans import Span, TickClock, Tracer, get_tracer

__all__ = [
    "CRASH_SCHEMA",
    "LEVELS",
    "LogRecord",
    "Logger",
    "get_logger",
    "set_logger",
    "default_crash_dir",
    "build_crash_report",
    "write_crash_report",
    "crash_dump_path",
    "crash_scope",
]

#: Schema tag stamped into every crash-report document.
CRASH_SCHEMA = "repro-crash/1"

#: Level names in severity order; numeric thresholds for filtering.
LEVELS: Dict[str, int] = {"debug": 10, "info": 20, "warn": 30, "error": 40}


@dataclass(frozen=True)
class LogRecord:
    """One structured record: level, message, fields, active span."""

    seq: int
    time: float
    level: str
    message: str
    span_id: Optional[int]
    fields: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """Sorted-field dict for JSON export (deterministic bytes)."""
        return {
            "seq": self.seq,
            "time": self.time,
            "level": self.level,
            "message": self.message,
            "span_id": self.span_id,
            "fields": {k: self.fields[k] for k in sorted(self.fields)},
        }


class Logger:
    """Bounded ring-buffer flight recorder for structured records.

    Parameters
    ----------
    capacity:
        Ring-buffer size; older records fall off the front.
    clock:
        Zero-argument callable returning seconds; defaults to the same
        monotonic clock the tracer uses.  Ignored when
        ``deterministic=True``.
    deterministic:
        Stamp records with a private :class:`TickClock` (0.0, 1.0, ...)
        so the record stream is byte-stable for a seeded workload.
    enabled:
        Disabled loggers record nothing (one attribute check per call).
    level:
        Minimum level recorded (``"debug"`` records everything).
    """

    def __init__(
        self,
        capacity: int = 256,
        clock: Optional[Callable[[], float]] = None,
        deterministic: bool = False,
        enabled: bool = True,
        level: str = "debug",
    ):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if level not in LEVELS:
            raise ValueError(
                f"unknown level {level!r}; known: {', '.join(LEVELS)}"
            )
        if deterministic:
            clock = TickClock()
        if clock is None:
            import time

            clock = time.perf_counter
        self.clock = clock
        self.deterministic = deterministic
        self.enabled = enabled
        self.capacity = capacity
        self.threshold = LEVELS[level]
        self.records: Deque[LogRecord] = deque(maxlen=capacity)
        self._seq = 0
        self._lock = threading.Lock()

    def log(
        self, level: str, message: str, **fields
    ) -> Optional[LogRecord]:
        """Record one entry; returns it (or ``None`` when filtered)."""
        if not self.enabled or LEVELS.get(level, 0) < self.threshold:
            return None
        span = get_tracer().current()
        with self._lock:
            record = LogRecord(
                seq=self._seq,
                time=self.clock(),
                level=level,
                message=message,
                span_id=span.span_id if span is not None else None,
                fields=fields,
            )
            self._seq += 1
            self.records.append(record)
        return record

    def debug(self, message: str, **fields) -> Optional[LogRecord]:
        return self.log("debug", message, **fields)

    def info(self, message: str, **fields) -> Optional[LogRecord]:
        return self.log("info", message, **fields)

    def warn(self, message: str, **fields) -> Optional[LogRecord]:
        return self.log("warn", message, **fields)

    def error(self, message: str, **fields) -> Optional[LogRecord]:
        return self.log("error", message, **fields)

    def tail(self, n: Optional[int] = None) -> List[LogRecord]:
        """The most recent ``n`` records, oldest first (all by default)."""
        with self._lock:
            records = list(self.records)
        return records if n is None else records[-n:]

    def reset(self) -> None:
        """Drop all records and restart the sequence counter."""
        with self._lock:
            self.records.clear()
            self._seq = 0


# ----------------------------------------------------------------------
# Process-global logger (starts disabled, like the tracer).
# ----------------------------------------------------------------------
_global_logger = Logger(enabled=False)


def get_logger() -> Logger:
    """The process-global logger the instrumented modules report to."""
    return _global_logger


def set_logger(logger: Logger) -> Logger:
    """Install ``logger`` as the global logger; returns the previous one."""
    global _global_logger
    previous = _global_logger
    _global_logger = logger
    return previous


# ----------------------------------------------------------------------
# Crash reports
# ----------------------------------------------------------------------
def default_crash_dir() -> str:
    """Where crash dumps land: ``$REPRO_CRASH_DIR`` or benchmarks/runs."""
    return os.environ.get(
        "REPRO_CRASH_DIR", os.path.join("benchmarks", "runs", "crashes")
    )


def _span_summary(span: Span) -> dict:
    """Deterministic one-node summary of an open span."""
    return {
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "name": span.name,
        "start": span.start,
        "thread": span.thread,
        "tags": {k: span.tags[k] for k in sorted(span.tags)},
    }


def build_crash_report(
    component: str,
    seed: int,
    exc: Optional[BaseException] = None,
    logger: Optional[Logger] = None,
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> dict:
    """Assemble a ``repro-crash/1`` document from the obs globals.

    ``records`` is the flight recorder's tail, ``open_spans`` the span
    stack captured when ``exc`` started unwinding (outermost first),
    ``metrics`` a snapshot of the registry at dump time, and ``profile``
    the top-10 self-time frames over the spans that had finished when
    the run died — *where time was going* when it crashed.  Exception
    tracebacks are deliberately excluded — type and message only — so
    dumps from identical seeded runs are byte-identical.
    """
    from .profile import build_profile

    logger = logger if logger is not None else get_logger()
    tracer = tracer if tracer is not None else get_tracer()
    metrics = metrics if metrics is not None else get_metrics()
    profile = build_profile(tracer.spans, deterministic=tracer.deterministic)
    doc = {
        "schema": CRASH_SCHEMA,
        "component": component,
        "seed": seed,
        "deterministic": logger.deterministic,
        "records": [r.to_dict() for r in logger.tail()],
        "open_spans": [
            _span_summary(s) for s in tracer.crash_stack(exc)
        ],
        "metrics": metrics.snapshot().to_dict(),
        "profile": [
            {"path": f.path, "calls": f.calls, "self": f.self_time}
            for f in profile.top(10)
        ],
    }
    if exc is not None:
        doc["exception"] = {
            "type": type(exc).__name__,
            "message": str(exc),
        }
    return doc


def crash_dump_path(directory: str, component: str, seed: int) -> str:
    """Deterministic dump filename for one (component, seed) pair."""
    safe = component.replace("/", "-").replace(" ", "-")
    return os.path.join(directory, f"crash_{safe}_{seed}.json")


def write_crash_report(doc: dict, directory: Optional[str] = None) -> str:
    """Write the crash document (sorted keys); returns the path."""
    directory = directory if directory is not None else default_crash_dir()
    os.makedirs(directory, exist_ok=True)
    path = crash_dump_path(directory, doc["component"], doc["seed"])
    with open(path, "w") as handle:
        json.dump(doc, handle, sort_keys=True, indent=2)
        handle.write("\n")
    return path


@contextmanager
def crash_scope(
    component: str, seed: int, directory: Optional[str] = None
):
    """Dump the flight recorder if the body raises, then re-raise.

    A no-op on the happy path and when the global logger is disabled —
    library code stays silent unless a run opted into recording.  The
    dump path is printed to stderr next to the failing seed, so a dead
    fuzz run or executor crash leaves a replayable forensic trail.
    """
    try:
        yield
    except Exception as exc:
        logger = get_logger()
        if logger.enabled:
            doc = build_crash_report(component, seed, exc=exc)
            path = write_crash_report(doc, directory)
            print(
                f"flight recorder: {component} crashed "
                f"(seed={seed}); dump written to {path}",
                file=sys.stderr,
            )
        raise
