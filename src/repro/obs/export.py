"""Trace and metrics exporters: JSON, Chrome trace-event, text tree.

Three views of the same span list:

* :func:`span_tree` / :func:`to_json_doc` — a nested JSON document (the
  ``repro-trace/1`` schema) with full timing, tags and instant events,
* :func:`structural_tree` — the *shape only* (names, nesting, sorted tag
  keys, event names), which is what the golden-trace tests and the bench
  determinism check compare — timings never leak in,
* :func:`to_chrome_trace` — the Chrome ``chrome://tracing`` /  Perfetto
  trace-event format (``ph: "X"`` complete events in microseconds, with
  ``ph: "i"`` instants), loadable straight into the browser,
* :func:`render_tree` — a compact indented text tree for the CLI.
"""

from __future__ import annotations

import json
import math
import re
from typing import Dict, List, Optional, Sequence, Tuple

from .metrics import MetricsSnapshot, bin_bounds, parse_labeled_name
from .spans import Span

__all__ = [
    "TRACE_SCHEMA",
    "OpenMetricsError",
    "span_tree",
    "structural_tree",
    "to_json_doc",
    "to_chrome_trace",
    "to_openmetrics",
    "parse_openmetrics",
    "render_tree",
    "render_metrics",
]

#: Schema tag stamped into every exported JSON trace document.
TRACE_SCHEMA = "repro-trace/1"


def _children_index(spans: Sequence[Span]) -> Dict[Optional[int], List[Span]]:
    index: Dict[Optional[int], List[Span]] = {}
    for span in spans:
        index.setdefault(span.parent_id, []).append(span)
    for children in index.values():
        children.sort(key=lambda s: s.span_id)
    return index


def span_tree(spans: Sequence[Span]) -> List[dict]:
    """Nest the flat span list into a list of root dicts (full detail)."""
    index = _children_index(spans)

    def node(span: Span) -> dict:
        return {
            "name": span.name,
            "start": span.start,
            "duration": span.duration,
            "thread": span.thread,
            "trace_id": span.trace_id,
            "span_uid": span.uid,
            "tags": dict(span.tags),
            "events": [
                {"name": e.name, "time": e.time, "tags": dict(e.tags)}
                for e in span.events
            ],
            "children": [node(c) for c in index.get(span.span_id, [])],
        }

    return [node(root) for root in index.get(None, [])]


def structural_tree(spans: Sequence[Span]) -> List[dict]:
    """Timing-free shape: names, nesting, sorted tag keys, event names."""
    index = _children_index(spans)

    def node(span: Span) -> dict:
        return {
            "name": span.name,
            "tags": sorted(span.tags),
            "events": [e.name for e in span.events],
            "children": [node(c) for c in index.get(span.span_id, [])],
        }

    return [node(root) for root in index.get(None, [])]


def to_json_doc(
    spans: Sequence[Span],
    metrics: Optional[MetricsSnapshot] = None,
) -> dict:
    """The full ``repro-trace/1`` document (spans + metric snapshot)."""
    doc = {"schema": TRACE_SCHEMA, "spans": span_tree(spans)}
    if metrics is not None:
        doc["metrics"] = metrics.to_dict()
    return doc


def to_chrome_trace(spans: Sequence[Span]) -> dict:
    """Chrome trace-event JSON (open in ``chrome://tracing`` / Perfetto)."""
    tids: Dict[str, int] = {}
    events: List[dict] = []
    for span in spans:
        tid = tids.setdefault(span.thread, len(tids) + 1)
        events.append(
            {
                "name": span.name,
                "ph": "X",
                "pid": 1,
                "tid": tid,
                "ts": span.start * 1e6,
                "dur": span.duration * 1e6,
                "args": dict(span.tags),
            }
        )
        for instant in span.events:
            events.append(
                {
                    "name": instant.name,
                    "ph": "i",
                    "s": "t",
                    "pid": 1,
                    "tid": tid,
                    "ts": instant.time * 1e6,
                    "args": dict(instant.tags),
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def _format_tag(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def render_tree(
    spans: Sequence[Span], show_events: bool = True, unit: str = "s"
) -> str:
    """Compact indented text tree (durations + tags on one line each)."""
    index = _children_index(spans)
    scale = {"s": 1.0, "ms": 1e3, "us": 1e6}[unit]
    lines: List[str] = []

    def walk(span: Span, depth: int) -> None:
        indent = "  " * depth
        tags = " ".join(
            f"{k}={_format_tag(v)}" for k, v in sorted(span.tags.items())
        )
        lines.append(
            f"{indent}{span.name:<{max(1, 28 - 2 * depth)}} "
            f"{span.duration * scale:>10.3f}{unit}"
            + (f"  {tags}" if tags else "")
        )
        if show_events:
            for event in span.events:
                etags = " ".join(
                    f"{k}={_format_tag(v)}"
                    for k, v in sorted(event.tags.items())
                )
                lines.append(
                    f"{indent}  * {event.name}" + (f" {etags}" if etags else "")
                )
        for child in index.get(span.span_id, []):
            walk(child, depth + 1)

    for root in index.get(None, []):
        walk(root, 0)
    return "\n".join(lines)


def render_metrics(snapshot: MetricsSnapshot) -> str:
    """Deterministic text rendering of a metric snapshot."""
    lines: List[str] = []
    for name in sorted(snapshot.counters):
        lines.append(f"counter   {name:<36} {snapshot.counters[name]:,.4f}")
    for name in sorted(snapshot.gauges):
        lines.append(f"gauge     {name:<36} {snapshot.gauges[name]:,.4f}")
    for name in sorted(snapshot.histograms):
        h = snapshot.histograms[name]
        lines.append(
            f"histogram {name:<36} n={h.count} sum={h.total:,.4f} "
            f"min={h.min} max={h.max}"
        )
    return "\n".join(lines)


def dumps(doc: dict) -> str:
    """Deterministic JSON bytes (sorted keys, stable separators)."""
    return json.dumps(doc, sort_keys=True, indent=2)


# ----------------------------------------------------------------------
# OpenMetrics text exposition
# ----------------------------------------------------------------------
class OpenMetricsError(ValueError):
    """The snapshot cannot be exported, or the text fails validation."""


_OM_NAME_BAD_RE = re.compile(r"[^a-zA-Z0-9_:]")
_OM_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>(?:[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\",?)*)\})?"
    r" (?P<value>\S+)$"
)


def _om_family(name: str) -> str:
    """Metric-family name: dots and other separators become underscores."""
    family = _OM_NAME_BAD_RE.sub("_", name)
    if not family or family[0].isdigit():
        family = "_" + family
    return family


def _om_escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


_OM_LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _om_label_pairs(block: str) -> List[Tuple[str, str]]:
    return _OM_LABEL_PAIR_RE.findall(block)


def _om_labels(pairs: Sequence[Tuple[str, str]]) -> str:
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_om_escape(v)}"' for k, v in pairs)
    return "{" + body + "}"


def _om_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def to_openmetrics(snapshot: MetricsSnapshot) -> str:
    """OpenMetrics text exposition of one snapshot, byte-deterministic.

    Labeled series (canonical ``name{k="v"}`` registry keys) are
    re-parsed into proper label sets; dotted metric names become
    underscore families.  Counters gain the mandated ``_total`` suffix;
    log2-bin histograms export cumulative ``_bucket{le=...}`` samples on
    the power-of-two bin edges plus ``_count``/``_sum``.  Families are
    emitted in sorted order and series in sorted-key order, so the same
    snapshot always renders identical bytes.
    """
    families: Dict[str, dict] = {}

    def family_for(series: str, kind: str) -> Tuple[str, tuple]:
        base, labels = parse_labeled_name(series)
        family = _om_family(base)
        entry = families.setdefault(family, {"type": kind, "samples": []})
        if entry["type"] != kind:
            raise OpenMetricsError(
                f"metric family {family!r} would mix types "
                f"{entry['type']!r} and {kind!r}"
            )
        return family, labels

    for series in sorted(snapshot.counters):
        family, labels = family_for(series, "counter")
        families[family]["samples"].append(
            f"{family}_total{_om_labels(labels)} "
            f"{_om_value(snapshot.counters[series])}"
        )
    for series in sorted(snapshot.gauges):
        family, labels = family_for(series, "gauge")
        families[family]["samples"].append(
            f"{family}{_om_labels(labels)} "
            f"{_om_value(snapshot.gauges[series])}"
        )
    for series in sorted(snapshot.histograms):
        family, labels = family_for(series, "histogram")
        hist = snapshot.histograms[series]
        samples = families[family]["samples"]
        cumulative = 0
        saw_inf = False
        for index, count in hist.bins:
            cumulative += count
            _, hi = bin_bounds(index)
            saw_inf = saw_inf or math.isinf(hi)
            le = _om_labels(tuple(labels) + (("le", _om_value(hi)),))
            samples.append(f"{family}_bucket{le} {cumulative}")
        if not saw_inf:
            le = _om_labels(tuple(labels) + (("le", "+Inf"),))
            samples.append(f"{family}_bucket{le} {cumulative}")
        samples.append(
            f"{family}_count{_om_labels(labels)} {hist.count}"
        )
        samples.append(
            f"{family}_sum{_om_labels(labels)} {_om_value(hist.total)}"
        )

    lines: List[str] = []
    for family in sorted(families):
        lines.append(f"# TYPE {family} {families[family]['type']}")
        lines.extend(families[family]["samples"])
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def parse_openmetrics(text: str) -> Dict[str, dict]:
    """Validate OpenMetrics text; returns ``{family: {type, samples}}``.

    Checks the structural contract CI relies on: a single trailing
    ``# EOF``, every sample preceded by its family's ``# TYPE`` line,
    parseable ``name{labels} value`` samples, and per-series histogram
    buckets that are cumulative with a final ``+Inf`` bucket equal to
    ``_count``.  Raises :class:`OpenMetricsError` on the first failure.
    """
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    if not lines or lines[-1] != "# EOF":
        raise OpenMetricsError("missing trailing # EOF line")
    families: Dict[str, dict] = {}
    buckets: Dict[str, List[Tuple[str, float]]] = {}
    counts: Dict[str, float] = {}
    for number, line in enumerate(lines[:-1], start=1):
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4:
                raise OpenMetricsError(f"line {number}: malformed TYPE line")
            _, _, family, kind = parts
            if family in families:
                raise OpenMetricsError(
                    f"line {number}: duplicate TYPE for {family!r}"
                )
            if kind not in ("counter", "gauge", "histogram"):
                raise OpenMetricsError(
                    f"line {number}: unknown type {kind!r}"
                )
            families[family] = {"type": kind, "samples": []}
            continue
        if line.startswith("#"):
            continue
        match = _OM_SAMPLE_RE.match(line)
        if match is None:
            raise OpenMetricsError(f"line {number}: unparseable sample {line!r}")
        name = match.group("name")
        family, suffix = name, ""
        for candidate_suffix in ("_total", "_bucket", "_count", "_sum"):
            base = name[: -len(candidate_suffix)]
            if name.endswith(candidate_suffix) and base in families:
                family, suffix = base, candidate_suffix
                break
        if family not in families:
            raise OpenMetricsError(
                f"line {number}: sample {name!r} has no preceding TYPE"
            )
        kind = families[family]["type"]
        expected = {
            "counter": ("_total",),
            "gauge": ("",),
            "histogram": ("_bucket", "_count", "_sum"),
        }[kind]
        if suffix not in expected:
            raise OpenMetricsError(
                f"line {number}: sample {name!r} is not a valid {kind} "
                f"sample for family {family!r}"
            )
        raw_value = match.group("value")
        try:
            value = float(raw_value)
        except ValueError:
            raise OpenMetricsError(
                f"line {number}: bad sample value {raw_value!r}"
            ) from None
        label_block = match.group("labels") or ""
        families[family]["samples"].append((name, label_block, value))
        if suffix == "_bucket":
            pairs = dict(_om_label_pairs(label_block))
            le = pairs.pop("le", None)
            if le is None:
                raise OpenMetricsError(
                    f"line {number}: histogram bucket without le label"
                )
            series = family + "|" + ",".join(
                f"{k}={v}" for k, v in sorted(pairs.items())
            )
            series_buckets = buckets.setdefault(series, [])
            if series_buckets and series_buckets[-1][1] > value:
                raise OpenMetricsError(
                    f"line {number}: non-cumulative bucket counts for "
                    f"{family!r}"
                )
            series_buckets.append((le, value))
        elif suffix == "_count":
            pairs = dict(_om_label_pairs(label_block))
            series = family + "|" + ",".join(
                f"{k}={v}" for k, v in sorted(pairs.items())
            )
            counts[series] = value
    for series, series_buckets in buckets.items():
        family = series.split("|", 1)[0]
        if series_buckets[-1][0] != "+Inf":
            raise OpenMetricsError(
                f"histogram {family!r} is missing the +Inf bucket"
            )
        if series in counts and series_buckets[-1][1] != counts[series]:
            raise OpenMetricsError(
                f"histogram {family!r}: +Inf bucket does not equal _count"
            )
    return families



