"""Trace and metrics exporters: JSON, Chrome trace-event, text tree.

Three views of the same span list:

* :func:`span_tree` / :func:`to_json_doc` — a nested JSON document (the
  ``repro-trace/1`` schema) with full timing, tags and instant events,
* :func:`structural_tree` — the *shape only* (names, nesting, sorted tag
  keys, event names), which is what the golden-trace tests and the bench
  determinism check compare — timings never leak in,
* :func:`to_chrome_trace` — the Chrome ``chrome://tracing`` /  Perfetto
  trace-event format (``ph: "X"`` complete events in microseconds, with
  ``ph: "i"`` instants), loadable straight into the browser,
* :func:`render_tree` — a compact indented text tree for the CLI.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from .metrics import MetricsSnapshot
from .spans import Span

__all__ = [
    "TRACE_SCHEMA",
    "span_tree",
    "structural_tree",
    "to_json_doc",
    "to_chrome_trace",
    "render_tree",
    "render_metrics",
]

#: Schema tag stamped into every exported JSON trace document.
TRACE_SCHEMA = "repro-trace/1"


def _children_index(spans: Sequence[Span]) -> Dict[Optional[int], List[Span]]:
    index: Dict[Optional[int], List[Span]] = {}
    for span in spans:
        index.setdefault(span.parent_id, []).append(span)
    for children in index.values():
        children.sort(key=lambda s: s.span_id)
    return index


def span_tree(spans: Sequence[Span]) -> List[dict]:
    """Nest the flat span list into a list of root dicts (full detail)."""
    index = _children_index(spans)

    def node(span: Span) -> dict:
        return {
            "name": span.name,
            "start": span.start,
            "duration": span.duration,
            "thread": span.thread,
            "tags": dict(span.tags),
            "events": [
                {"name": e.name, "time": e.time, "tags": dict(e.tags)}
                for e in span.events
            ],
            "children": [node(c) for c in index.get(span.span_id, [])],
        }

    return [node(root) for root in index.get(None, [])]


def structural_tree(spans: Sequence[Span]) -> List[dict]:
    """Timing-free shape: names, nesting, sorted tag keys, event names."""
    index = _children_index(spans)

    def node(span: Span) -> dict:
        return {
            "name": span.name,
            "tags": sorted(span.tags),
            "events": [e.name for e in span.events],
            "children": [node(c) for c in index.get(span.span_id, [])],
        }

    return [node(root) for root in index.get(None, [])]


def to_json_doc(
    spans: Sequence[Span],
    metrics: Optional[MetricsSnapshot] = None,
) -> dict:
    """The full ``repro-trace/1`` document (spans + metric snapshot)."""
    doc = {"schema": TRACE_SCHEMA, "spans": span_tree(spans)}
    if metrics is not None:
        doc["metrics"] = metrics.to_dict()
    return doc


def to_chrome_trace(spans: Sequence[Span]) -> dict:
    """Chrome trace-event JSON (open in ``chrome://tracing`` / Perfetto)."""
    tids: Dict[str, int] = {}
    events: List[dict] = []
    for span in spans:
        tid = tids.setdefault(span.thread, len(tids) + 1)
        events.append(
            {
                "name": span.name,
                "ph": "X",
                "pid": 1,
                "tid": tid,
                "ts": span.start * 1e6,
                "dur": span.duration * 1e6,
                "args": dict(span.tags),
            }
        )
        for instant in span.events:
            events.append(
                {
                    "name": instant.name,
                    "ph": "i",
                    "s": "t",
                    "pid": 1,
                    "tid": tid,
                    "ts": instant.time * 1e6,
                    "args": dict(instant.tags),
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def _format_tag(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def render_tree(
    spans: Sequence[Span], show_events: bool = True, unit: str = "s"
) -> str:
    """Compact indented text tree (durations + tags on one line each)."""
    index = _children_index(spans)
    scale = {"s": 1.0, "ms": 1e3, "us": 1e6}[unit]
    lines: List[str] = []

    def walk(span: Span, depth: int) -> None:
        indent = "  " * depth
        tags = " ".join(
            f"{k}={_format_tag(v)}" for k, v in sorted(span.tags.items())
        )
        lines.append(
            f"{indent}{span.name:<{max(1, 28 - 2 * depth)}} "
            f"{span.duration * scale:>10.3f}{unit}"
            + (f"  {tags}" if tags else "")
        )
        if show_events:
            for event in span.events:
                etags = " ".join(
                    f"{k}={_format_tag(v)}"
                    for k, v in sorted(event.tags.items())
                )
                lines.append(
                    f"{indent}  * {event.name}" + (f" {etags}" if etags else "")
                )
        for child in index.get(span.span_id, []):
            walk(child, depth + 1)

    for root in index.get(None, []):
        walk(root, 0)
    return "\n".join(lines)


def render_metrics(snapshot: MetricsSnapshot) -> str:
    """Deterministic text rendering of a metric snapshot."""
    lines: List[str] = []
    for name in sorted(snapshot.counters):
        lines.append(f"counter   {name:<36} {snapshot.counters[name]:,.4f}")
    for name in sorted(snapshot.gauges):
        lines.append(f"gauge     {name:<36} {snapshot.gauges[name]:,.4f}")
    for name in sorted(snapshot.histograms):
        h = snapshot.histograms[name]
        lines.append(
            f"histogram {name:<36} n={h.count} sum={h.total:,.4f} "
            f"min={h.min} max={h.max}"
        )
    return "\n".join(lines)


def dumps(doc: dict) -> str:
    """Deterministic JSON bytes (sorted keys, stable separators)."""
    return json.dumps(doc, sort_keys=True, indent=2)
