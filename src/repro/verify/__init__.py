"""Differential verification: oracles + seeded fuzzing.

The paper's headline claims are exact-correctness claims — the MCKP DP is
*optimal*, the list scheduler's makespans drive the runtime-vs-vCPU
curves, and AIG rewrites must preserve the logic function.  This package
machine-checks those invariants by differential testing: every optimized
implementation is fuzzed against an independent brute-force or closed-form
reference (:mod:`repro.verify.oracles`), driven by a deterministic seeded
fuzzer (:mod:`repro.verify.fuzz`) whose failures replay from a printed
seed.  The ``repro verify`` CLI subcommand wires it into CI.
"""

from .corpus import (
    DEFAULT_CORPUS_PATH,
    CorpusEntry,
    append_failures,
    format_entry,
    load_corpus,
    parse_corpus,
    replay_corpus,
    replay_entry,
)
from .fuzz import (
    ORACLES,
    FuzzFailure,
    FuzzReport,
    OracleReport,
    run_fuzz,
    run_trial,
    trial_seed,
)
from .oracles import (
    aig_equivalence_violations,
    convergence_violations,
    cut_function_violations,
    execution_violations,
    exhaustive_output_tables,
    fleet_violations,
    mckp_violations,
    node_value_words,
    obs_violations,
    recipe_equivalence_violations,
    schedule_violations,
    service_violations,
    spot_violations,
)

__all__ = [
    "ORACLES",
    "DEFAULT_CORPUS_PATH",
    "CorpusEntry",
    "FuzzFailure",
    "FuzzReport",
    "OracleReport",
    "append_failures",
    "format_entry",
    "load_corpus",
    "parse_corpus",
    "replay_corpus",
    "replay_entry",
    "run_fuzz",
    "run_trial",
    "trial_seed",
    "aig_equivalence_violations",
    "convergence_violations",
    "cut_function_violations",
    "execution_violations",
    "exhaustive_output_tables",
    "fleet_violations",
    "mckp_violations",
    "node_value_words",
    "obs_violations",
    "recipe_equivalence_violations",
    "schedule_violations",
    "service_violations",
    "spot_violations",
]
