"""Deterministic seeded fuzz driver over the differential oracles.

Every trial derives a 32-bit *trial seed* from ``(oracle name, base seed,
trial index)`` via ``zlib.crc32`` — stable across processes and Python
versions (unlike ``hash``, which ``PYTHONHASHSEED`` randomizes).  A trial
seeds ``random.Random(trial_seed)``, generates one instance, and runs its
oracle, so any failure can be replayed in isolation::

    repro verify --oracle mckp --replay-seed 123456789

The report renderer is deliberately timestamp-free: the same base seed and
trial count always produce byte-identical output, which the determinism
tests assert.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..eda.synthesis import balance
from ..obs import (
    Logger,
    MetricsRegistry,
    Tracer,
    get_logger,
    get_metrics,
    get_tracer,
    scoped,
)
from ..obs.log import build_crash_report, crash_scope, write_crash_report
from . import corpus, generators, oracles

__all__ = [
    "ORACLES",
    "FuzzFailure",
    "OracleReport",
    "FuzzReport",
    "trial_seed",
    "run_trial",
    "run_fuzz",
    "dump_trial_forensics",
]


# ----------------------------------------------------------------------
# Oracle trials: generate one instance from an rng, check it
# ----------------------------------------------------------------------
def _mckp_trial(rng: random.Random) -> List[str]:
    stages, deadline = generators.random_mckp_instance(rng)
    return oracles.mckp_violations(stages, deadline)


def _schedule_trial(rng: random.Random) -> List[str]:
    graph, workers = generators.random_task_graph(rng)
    return oracles.schedule_violations(graph, workers)


def _aig_trial(rng: random.Random) -> List[str]:
    aig = generators.random_aig(rng)
    recipe, seed = generators.random_recipe(rng)
    out = oracles.aig_equivalence_violations(aig, balance(aig), label="balance")
    out.extend(oracles.recipe_equivalence_violations(aig, recipe, seed))
    return out


def _cuts_trial(rng: random.Random) -> List[str]:
    aig = generators.random_aig(rng)
    k = rng.randint(2, 6)
    return oracles.cut_function_violations(aig, k=k, cap=rng.randint(2, 8))


def _spot_trial(rng: random.Random) -> List[str]:
    runtime, rate, interval = generators.random_spot_params(rng)
    return oracles.spot_violations(runtime, rate, interval)


def _executor_trial(rng: random.Random) -> List[str]:
    plan, deadline, profile, policy, seed, menus = (
        generators.random_execution_case(rng)
    )
    return oracles.execution_violations(
        plan, deadline, profile, policy, seed, stage_options=menus
    )


def _chaos_trial(rng: random.Random) -> List[str]:
    runtime, rate, interval = generators.random_chaos_params(rng)
    return oracles.convergence_violations(
        runtime, rate, interval, trials=500, seed=rng.randrange(1 << 30)
    )


def _obs_trial(rng: random.Random) -> List[str]:
    plan, deadline, profile, policy, seed, menus = (
        generators.random_execution_case(rng)
    )
    return oracles.obs_violations(
        plan, deadline, profile, policy, seed, stage_options=menus
    )


def _service_trial(rng: random.Random) -> List[str]:
    requests, workers, depth = generators.random_service_case(rng)
    return oracles.service_violations(requests, workers, depth)


def _scenario_trial(rng: random.Random) -> List[str]:
    name, severity, seed = generators.random_scenario_case(rng)
    return oracles.chaos_scenario_violations(name, severity, seed)


def _fleet_trial(rng: random.Random) -> List[str]:
    menus, flows = generators.random_fleet_case(rng)
    return oracles.fleet_violations(menus, flows)


def _attrib_trial(rng: random.Random) -> List[str]:
    requests, workers, depth = generators.random_service_case(rng)
    return oracles.attrib_violations(requests, workers, depth)


def _slo_trial(rng: random.Random) -> List[str]:
    requests, workers, depth = generators.random_service_case(rng)
    return oracles.slo_violations(requests, workers, depth)


#: Registered oracles, in report order.
ORACLES: Dict[str, Callable[[random.Random], List[str]]] = {
    "mckp": _mckp_trial,
    "schedule": _schedule_trial,
    "aig": _aig_trial,
    "cuts": _cuts_trial,
    "spot": _spot_trial,
    "executor": _executor_trial,
    "chaos": _chaos_trial,
    "obs": _obs_trial,
    "service": _service_trial,
    "scenario": _scenario_trial,
    "fleet": _fleet_trial,
    "attrib": _attrib_trial,
    "slo": _slo_trial,
}


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
def trial_seed(base_seed: int, oracle: str, trial: int) -> int:
    """Stable 32-bit per-trial seed (replayable across processes)."""
    return zlib.crc32(f"{oracle}:{base_seed}:{trial}".encode())


def run_trial(oracle: str, seed: int) -> List[str]:
    """Run one oracle trial from an explicit (replay) seed."""
    if oracle not in ORACLES:
        raise ValueError(
            f"unknown oracle {oracle!r}; known: {', '.join(ORACLES)}"
        )
    log = get_logger()
    log.debug("verify.trial", oracle=oracle, seed=seed)
    messages = ORACLES[oracle](random.Random(seed))
    for message in messages:
        log.warn(
            "verify.violation", oracle=oracle, seed=seed, violation=message
        )
    return messages


def dump_trial_forensics(
    oracle: str, seed: int, directory: Optional[str] = None
) -> str:
    """Replay one trial in an isolated deterministic scope and dump it.

    Installs a fresh tick-clock tracer, a fresh metric registry, and a
    fresh deterministic flight recorder, re-runs the trial, and writes a
    ``repro-crash/1`` document carrying the record tail, the span stack
    at the point of any raise, a metric snapshot, and the oracle's
    violation messages.  Because the scope is fully isolated and every
    clock is a tick clock, the same ``(oracle, seed)`` always produces
    **byte-identical** dump files — ``repro verify --replay-seed`` and
    the original fuzz run emit the same bytes.
    """
    if oracle not in ORACLES:
        raise ValueError(
            f"unknown oracle {oracle!r}; known: {', '.join(ORACLES)}"
        )
    tracer = Tracer(deterministic=True)
    registry = MetricsRegistry()
    logger = Logger(deterministic=True)
    messages: List[str] = []
    caught: Optional[Exception] = None
    with scoped(tracer=tracer, metrics=registry, log=logger):
        try:
            with tracer.span("verify.replay", oracle=oracle, seed=seed):
                messages = run_trial(oracle, seed)
        except Exception as exc:
            caught = exc
    doc = build_crash_report(
        component=f"verify.{oracle}",
        seed=seed,
        exc=caught,
        logger=logger,
        tracer=tracer,
        metrics=registry,
    )
    doc["messages"] = list(messages)
    return write_crash_report(doc, directory)


@dataclass(frozen=True)
class FuzzFailure:
    """One failing trial, with everything needed to replay it."""

    oracle: str
    trial: int
    seed: int
    messages: Tuple[str, ...]
    dump_path: Optional[str] = None


@dataclass
class OracleReport:
    """Aggregate result of all trials of one oracle."""

    name: str
    trials: int
    failures: List[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


@dataclass
class FuzzReport:
    """Full fuzz-run result with a deterministic text rendering."""

    base_seed: int
    trials_per_oracle: int
    oracles: List[OracleReport] = field(default_factory=list)

    @property
    def num_violations(self) -> int:
        return sum(
            len(f.messages) for o in self.oracles for f in o.failures
        )

    @property
    def ok(self) -> bool:
        return self.num_violations == 0

    def render(self) -> str:
        lines = [
            f"repro verify: seed={self.base_seed} "
            f"trials={self.trials_per_oracle} per oracle"
        ]
        for report in self.oracles:
            status = "ok" if report.ok else f"{len(report.failures)} FAILING"
            lines.append(
                f"  {report.name:<10} {report.trials:>6} trials   {status}"
            )
            for failure in report.failures:
                dump = (
                    f"; dump: {failure.dump_path}"
                    if failure.dump_path is not None
                    else ""
                )
                lines.append(
                    f"    trial {failure.trial} (replay: repro verify "
                    f"--oracle {failure.oracle} --replay-seed {failure.seed}"
                    f"{dump})"
                )
                for message in failure.messages:
                    lines.append(f"      {message}")
        total_trials = sum(o.trials for o in self.oracles)
        verdict = "PASS" if self.ok else "FAIL"
        lines.append(
            f"{verdict}: {len(self.oracles)} oracles, {total_trials} trials, "
            f"{self.num_violations} violations"
        )
        return "\n".join(lines)


def run_fuzz(
    oracle_names: Optional[Sequence[str]] = None,
    trials: int = 200,
    seed: int = 0,
    progress: Optional[Callable[[str], None]] = None,
    dump_dir: Optional[str] = None,
    corpus_path: Optional[str] = None,
) -> FuzzReport:
    """Run ``trials`` seeded trials for each selected oracle.

    Parameters
    ----------
    oracle_names:
        Subset of :data:`ORACLES` to run (default: all, in registry order).
    trials:
        Trials per oracle.
    seed:
        Base seed; the same seed always produces the same report.
    progress:
        Optional per-oracle line sink (the CLI passes ``print``).
    dump_dir:
        When set, every failing trial also writes a flight-recorder
        forensics dump (:func:`dump_trial_forensics`) into this
        directory, and the report prints the dump path next to the
        replay seed.
    corpus_path:
        When set, every failing trial's ``(oracle, seed)`` is appended
        (deduplicated) to this replay corpus, so the failure becomes a
        permanent tier-1 regression case (see :mod:`repro.verify.corpus`).
    """
    if trials < 1:
        raise ValueError("trials must be >= 1")
    names = list(ORACLES) if oracle_names is None else list(oracle_names)
    for name in names:
        if name not in ORACLES:
            raise ValueError(
                f"unknown oracle {name!r}; known: {', '.join(ORACLES)}"
            )
    report = FuzzReport(base_seed=seed, trials_per_oracle=trials)
    tracer = get_tracer()
    trial_counter = get_metrics().counter("verify.trials")
    failure_counter = get_metrics().counter("verify.oracle_failures")
    with tracer.span("verify.fuzz", seed=seed, trials=trials):
        for name in names:
            oracle_report = OracleReport(name=name, trials=trials)
            with tracer.span("verify.oracle", oracle=name):
                for trial in range(trials):
                    tseed = trial_seed(seed, name, trial)
                    with tracer.span(
                        "verify.trial", oracle=name, trial=trial
                    ) as span:
                        with crash_scope(
                            f"verify.{name}", tseed, directory=dump_dir
                        ):
                            messages = run_trial(name, tseed)
                        trial_counter.inc()
                        if messages:
                            failure_counter.inc()
                            span.set_tag("violations", len(messages))
                    if messages:
                        dump_path = (
                            dump_trial_forensics(name, tseed, dump_dir)
                            if dump_dir is not None
                            else None
                        )
                        oracle_report.failures.append(
                            FuzzFailure(
                                oracle=name,
                                trial=trial,
                                seed=tseed,
                                messages=tuple(messages),
                                dump_path=dump_path,
                            )
                        )
            report.oracles.append(oracle_report)
            if progress is not None:
                status = "ok" if oracle_report.ok else "FAIL"
                progress(f"oracle {name}: {trials} trials {status}")
    if corpus_path is not None:
        failures = [f for o in report.oracles for f in o.failures]
        if failures:
            added = corpus.append_failures(corpus_path, failures)
            if progress is not None and added:
                progress(
                    f"recorded {added} new corpus entr"
                    f"{'y' if added == 1 else 'ies'} in {corpus_path}"
                )
    return report
