"""Seeded replay corpus: past fuzz failures become permanent tests.

A corpus file is a plain text list of ``oracle:seed`` lines (``#``
comments and blank lines allowed).  When ``repro verify`` runs with
``--record-corpus``, every failing trial's ``(oracle, trial seed)`` pair
is appended — deduplicated — to the corpus, and the tier-1 suite
(``tests/verify/test_corpus.py``) replays each entry as an ordinary
parametrized pytest case.  An oracle failure thus only ever has to be
found once: from then on it is a regression test, independent of which
base seed or trial count future fuzz runs use.

The file format is deliberately line-oriented and mergeable: appends are
sorted and idempotent, so concurrent CI jobs or stacked branches adding
entries produce clean diffs.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple, Union

__all__ = [
    "CorpusEntry",
    "parse_corpus",
    "load_corpus",
    "format_entry",
    "append_failures",
    "replay_entry",
    "replay_corpus",
    "DEFAULT_CORPUS_PATH",
]

#: Default corpus location, relative to the repository root.
DEFAULT_CORPUS_PATH = os.path.join("tests", "verify", "corpus.txt")

_HEADER = (
    "# repro verify replay corpus — one failing (oracle, seed) per line.\n"
    "# Replayed as tier-1 pytest cases; append via "
    "`repro verify --record-corpus`.\n"
)


@dataclass(frozen=True)
class CorpusEntry:
    """One recorded failure: the oracle and the exact trial seed."""

    oracle: str
    seed: int

    def __str__(self) -> str:
        return format_entry(self.oracle, self.seed)


def format_entry(oracle: str, seed: int) -> str:
    """The canonical one-line rendering of a corpus entry."""
    return f"{oracle}:{seed}"


def parse_corpus(text: str) -> List[CorpusEntry]:
    """Parse corpus text into entries; raises with line numbers on junk."""
    entries: List[CorpusEntry] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        oracle, sep, seed_text = line.partition(":")
        oracle = oracle.strip()
        if not sep or not oracle:
            raise ValueError(
                f"corpus line {lineno}: expected 'oracle:seed', got {raw!r}"
            )
        try:
            seed = int(seed_text.strip())
        except ValueError:
            raise ValueError(
                f"corpus line {lineno}: seed {seed_text.strip()!r} "
                f"is not an integer"
            ) from None
        if seed < 0:
            raise ValueError(f"corpus line {lineno}: seed must be >= 0")
        entries.append(CorpusEntry(oracle=oracle, seed=seed))
    return entries


def load_corpus(path: str = DEFAULT_CORPUS_PATH) -> List[CorpusEntry]:
    """Load a corpus file; a missing file is an empty corpus."""
    if not os.path.exists(path):
        return []
    with open(path, "r", encoding="utf-8") as handle:
        return parse_corpus(handle.read())


def append_failures(
    path: str,
    failures: Iterable[Union[CorpusEntry, Tuple[str, int], object]],
) -> int:
    """Append failing ``(oracle, seed)`` pairs to a corpus, deduplicated.

    Accepts :class:`CorpusEntry`, plain ``(oracle, seed)`` tuples, or any
    object with ``.oracle`` / ``.seed`` attributes (e.g. a
    :class:`~repro.verify.fuzz.FuzzFailure`).  Existing entries are kept
    verbatim; new ones are appended sorted.  Returns how many entries
    were actually added (0 means the file is untouched).
    """
    incoming: List[CorpusEntry] = []
    for item in failures:
        if isinstance(item, CorpusEntry):
            incoming.append(item)
        elif isinstance(item, tuple):
            oracle, seed = item
            incoming.append(CorpusEntry(oracle=str(oracle), seed=int(seed)))
        else:
            incoming.append(
                CorpusEntry(oracle=str(item.oracle), seed=int(item.seed))
            )
    known = set(load_corpus(path))
    fresh = sorted(
        {e for e in incoming if e not in known},
        key=lambda e: (e.oracle, e.seed),
    )
    if not fresh:
        return 0
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    new_file = not os.path.exists(path)
    with open(path, "a", encoding="utf-8") as handle:
        if new_file:
            handle.write(_HEADER)
        for entry in fresh:
            handle.write(format_entry(entry.oracle, entry.seed) + "\n")
    return len(fresh)


def replay_entry(entry: CorpusEntry) -> List[str]:
    """Re-run one corpus entry; returns its oracle's violation messages.

    An empty list means the historical failure stays fixed.  Imports the
    fuzz driver lazily (the driver imports this module for recording).
    """
    from .fuzz import run_trial

    return run_trial(entry.oracle, entry.seed)


def replay_corpus(path: str = DEFAULT_CORPUS_PATH) -> List[Tuple[CorpusEntry, List[str]]]:
    """Replay every corpus entry; returns ``(entry, violations)`` pairs."""
    return [(entry, replay_entry(entry)) for entry in load_corpus(path)]
