"""Cross-module differential oracles.

Each oracle compares an optimized implementation against an independent
reference and returns a list of human-readable violation messages (empty
when the invariant holds):

* :func:`mckp_violations` — the MCKP dynamic programs
  (:func:`~repro.core.optimize.solve_mckp_dp`,
  :func:`~repro.core.optimize.solve_min_cost_dp`) against the exhaustive
  :func:`~repro.core.optimize.solve_brute_force` reference, plus greedy
  feasibility/optimality sanity,
* :func:`schedule_violations` — list-scheduler output validity (precedence,
  one task per worker at a time) and the Graham makespan bounds
  ``critical_path <= makespan <= work/k + critical_path``,
* :func:`aig_equivalence_violations` — truth-table equivalence of synthesis
  transforms (exhaustive up to 10 inputs, random signatures above),
* :func:`cut_function_violations` — every enumerated cut's truth table
  matches the node function obtained by exhaustive simulation,
* :func:`spot_violations` — closed-form limit and monotonicity checks for
  the spot-market runtime model.

The checkers accept the implementation under test as an injectable
parameter, so the mutation smoke tests can verify that a deliberately
corrupted implementation *is* caught.
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional, Sequence

from ..cloud.spot import spot_expected_runtime
from ..core.optimize import (
    Selection,
    StageOptions,
    selection_objective,
    solve_brute_force,
    solve_greedy,
    solve_mckp_dp,
    solve_min_cost_dp,
)
from ..eda.cuts import CutSet, enumerate_cuts
from ..eda.synthesis import apply_recipe
from ..eda.truthtables import var_table
from ..netlist.aig import AIG, lit_is_complemented, lit_node
from ..parallel.scheduler import ScheduleResult, list_schedule
from ..parallel.taskgraph import TaskGraph

__all__ = [
    "mckp_violations",
    "schedule_violations",
    "aig_equivalence_violations",
    "recipe_equivalence_violations",
    "cut_function_violations",
    "spot_violations",
    "exhaustive_output_tables",
    "node_value_words",
]

#: Relative tolerance for floating-point objective comparisons.
REL_TOL = 1e-9
#: Absolute slack for schedule time comparisons.
TIME_EPS = 1e-9
#: Exhaustive simulation is used up to this many primary inputs.
EXHAUSTIVE_INPUT_LIMIT = 10


def _close(a: float, b: float) -> bool:
    return math.isclose(a, b, rel_tol=REL_TOL, abs_tol=1e-12)


# ----------------------------------------------------------------------
# MCKP: DP vs brute force
# ----------------------------------------------------------------------
def _check_selection_shape(
    selection: Selection,
    stages: Sequence[StageOptions],
    capacity: int,
    label: str,
    out: List[str],
) -> None:
    expected = {s.stage for s in stages}
    got = set(selection.choices)
    if got != expected:
        out.append(f"{label}: covers stages {sorted(got)} != {sorted(expected)}")
        return
    for stage_opts in stages:
        if selection.choices[stage_opts.stage] not in stage_opts.options:
            out.append(
                f"{label}: stage {stage_opts.stage.value} option not in its menu"
            )
    if selection.total_runtime > capacity:
        out.append(
            f"{label}: total runtime {selection.total_runtime} exceeds "
            f"deadline {capacity}"
        )


def mckp_violations(
    stages: Sequence[StageOptions],
    deadline_seconds: float,
    solver: Callable[..., Optional[Selection]] = solve_mckp_dp,
    min_cost_solver: Callable[..., Optional[Selection]] = solve_min_cost_dp,
) -> List[str]:
    """Differential check of both DP objectives against brute force."""
    out: List[str] = []
    capacity = int(math.floor(deadline_seconds))
    for maximize, impl, label in (
        (True, solver, "mckp-dp"),
        (False, min_cost_solver, "min-cost-dp"),
    ):
        reference = solve_brute_force(stages, deadline_seconds, maximize)
        candidate = impl(stages, deadline_seconds)
        if (reference is None) != (candidate is None):
            out.append(
                f"{label}: feasibility mismatch (brute force "
                f"{'in' if reference is None else ''}feasible, dp "
                f"{'in' if candidate is None else ''}feasible)"
            )
            continue
        if reference is None or candidate is None:
            continue
        _check_selection_shape(candidate, stages, capacity, label, out)
        ref_obj = selection_objective(reference, maximize)
        cand_obj = selection_objective(candidate, maximize)
        if not _close(ref_obj, cand_obj):
            out.append(
                f"{label}: objective {cand_obj!r} != brute-force optimum "
                f"{ref_obj!r}"
            )
    # Greedy is a heuristic: it must agree on feasibility, stay feasible,
    # and never beat the true min-cost optimum.
    greedy = solve_greedy(stages, deadline_seconds)
    reference = solve_brute_force(stages, deadline_seconds, False)
    if (reference is None) != (greedy is None):
        out.append("greedy: feasibility mismatch vs brute force")
    elif greedy is not None and reference is not None:
        _check_selection_shape(greedy, stages, capacity, "greedy", out)
        if greedy.total_cost < reference.total_cost * (1.0 - REL_TOL) - 1e-12:
            out.append(
                f"greedy: cost {greedy.total_cost!r} beats the optimum "
                f"{reference.total_cost!r}"
            )
    return out


# ----------------------------------------------------------------------
# Scheduler: validity + Graham bounds
# ----------------------------------------------------------------------
def schedule_violations(
    graph: TaskGraph,
    workers: int,
    result: Optional[ScheduleResult] = None,
) -> List[str]:
    """Check a schedule for validity and makespan bounds.

    With ``result=None`` the schedule is produced by
    :func:`~repro.parallel.scheduler.list_schedule`; the mutation tests
    pass a tampered result instead.
    """
    out: List[str] = []
    if result is None:
        result = list_schedule(graph, workers)
    tasks = graph.tasks
    task_ids = {t.task_id for t in tasks}
    if set(result.start_times) != task_ids or set(result.finish_times) != task_ids:
        out.append("schedule: not every task was scheduled exactly once")
        return out
    by_task = {t.task_id: t for t in tasks}
    for tid, task in by_task.items():
        start = result.start_times[tid]
        finish = result.finish_times[tid]
        if start < -TIME_EPS:
            out.append(f"task {tid}: negative start time {start!r}")
        if not math.isclose(
            finish - start, task.work, rel_tol=1e-9, abs_tol=TIME_EPS
        ):
            out.append(
                f"task {tid}: duration {finish - start!r} != work {task.work!r}"
            )
        for dep in task.deps:
            if start < result.finish_times[dep] - TIME_EPS:
                out.append(
                    f"task {tid}: starts at {start!r} before dependency "
                    f"{dep} finishes at {result.finish_times[dep]!r}"
                )
    # One task per worker at a time.
    per_worker: dict = {}
    for tid, worker in result.worker_of.items():
        per_worker.setdefault(worker, []).append(tid)
    if tasks and set(result.worker_of) != task_ids:
        out.append("schedule: worker assignment missing tasks")
    for worker, tids in per_worker.items():
        if not 0 <= worker < workers:
            out.append(f"schedule: unknown worker id {worker}")
        tids.sort(key=lambda t: result.start_times[t])
        for prev, cur in zip(tids, tids[1:]):
            if result.start_times[cur] < result.finish_times[prev] - TIME_EPS:
                out.append(
                    f"worker {worker}: tasks {prev} and {cur} overlap "
                    f"({result.finish_times[prev]!r} > "
                    f"{result.start_times[cur]!r})"
                )
    # Makespan bookkeeping and Graham bounds.
    if tasks:
        true_makespan = max(result.finish_times.values())
        if not math.isclose(
            result.makespan, true_makespan, rel_tol=1e-9, abs_tol=TIME_EPS
        ):
            out.append(
                f"schedule: makespan {result.makespan!r} != max finish "
                f"{true_makespan!r}"
            )
    critical = graph.critical_path()
    lower = max(critical, graph.total_work / workers)
    if result.makespan < lower - TIME_EPS - 1e-9 * lower:
        out.append(
            f"schedule: makespan {result.makespan!r} below lower bound "
            f"{lower!r}"
        )
    upper = graph.total_work / workers + critical
    if result.makespan > upper + TIME_EPS + 1e-9 * upper:
        out.append(
            f"schedule: makespan {result.makespan!r} exceeds Graham bound "
            f"{upper!r}"
        )
    return out


# ----------------------------------------------------------------------
# AIG: truth-table equivalence
# ----------------------------------------------------------------------
def exhaustive_output_tables(aig: AIG) -> List[int]:
    """Per-output truth tables over all ``2**num_inputs`` patterns."""
    n = aig.num_inputs
    if n > EXHAUSTIVE_INPUT_LIMIT:
        raise ValueError(
            f"{n} inputs exceed the exhaustive limit {EXHAUSTIVE_INPUT_LIMIT}"
        )
    words = [var_table(j, n) for j in range(n)]
    return aig.simulate(words, width=1 << n)


def _signature_tables(aig: AIG, patterns: int, seed: int) -> List[int]:
    return aig.random_simulation_signature(patterns=patterns, seed=seed)


def aig_equivalence_violations(
    original: AIG,
    transformed: AIG,
    label: str = "transform",
    signature_patterns: int = 256,
    signature_seed: int = 0,
) -> List[str]:
    """Check that a synthesis transform preserved the logic function.

    Uses exhaustive truth tables when the input count allows (complete
    equivalence), otherwise bit-parallel random-signature comparison (a
    one-sided check: equal signatures do not prove equivalence, unequal
    signatures disprove it).
    """
    out: List[str] = []
    if original.num_inputs != transformed.num_inputs:
        out.append(
            f"{label}: input count changed "
            f"{original.num_inputs} -> {transformed.num_inputs}"
        )
        return out
    if original.num_outputs != transformed.num_outputs:
        out.append(
            f"{label}: output count changed "
            f"{original.num_outputs} -> {transformed.num_outputs}"
        )
        return out
    if original.num_inputs <= EXHAUSTIVE_INPUT_LIMIT:
        before = exhaustive_output_tables(original)
        after = exhaustive_output_tables(transformed)
        how = "exhaustive"
    else:
        before = _signature_tables(original, signature_patterns, signature_seed)
        after = _signature_tables(transformed, signature_patterns, signature_seed)
        how = f"{signature_patterns}-pattern signature"
    for idx, (b, a) in enumerate(zip(before, after)):
        if b != a:
            out.append(
                f"{label}: output {idx} function changed ({how} mismatch, "
                f"differing bits {bin(b ^ a).count('1')})"
            )
    return out


def recipe_equivalence_violations(
    aig: AIG, recipe: Sequence[str], seed: int
) -> List[str]:
    """Run a synthesis recipe and check function preservation."""
    transformed = apply_recipe(aig, recipe, seed=seed)
    return aig_equivalence_violations(
        aig, transformed, label=f"recipe {'/'.join(recipe)}@{seed}"
    )


# ----------------------------------------------------------------------
# Cuts: every cut table matches the node function
# ----------------------------------------------------------------------
def node_value_words(aig: AIG) -> List[int]:
    """Exhaustive simulation value word for *every* node (not just outputs)."""
    n = aig.num_inputs
    if n > EXHAUSTIVE_INPUT_LIMIT:
        raise ValueError(
            f"{n} inputs exceed the exhaustive limit {EXHAUSTIVE_INPUT_LIMIT}"
        )
    width = 1 << n
    mask = (1 << width) - 1
    values = [0] * aig.size
    for j, node in enumerate(aig.inputs):
        values[node] = var_table(j, n)
    for node in aig.and_nodes():
        a, b = aig.fanins(node)
        va = values[lit_node(a)] ^ (mask if lit_is_complemented(a) else 0)
        vb = values[lit_node(b)] ^ (mask if lit_is_complemented(b) else 0)
        values[node] = va & vb
    return values


def cut_function_violations(
    aig: AIG,
    k: int = 4,
    cap: int = 6,
    cuts: Optional[CutSet] = None,
) -> List[str]:
    """Check every enumerated cut's truth table against exhaustive simulation.

    For each node and each of its cuts, the node's simulated value under
    every input pattern must equal the cut table entry indexed by the
    leaves' simulated values.  ``cuts`` may be supplied pre-tampered by the
    mutation tests.
    """
    out: List[str] = []
    if cuts is None:
        cuts, _ = enumerate_cuts(aig, k=k, cap=cap)
    values = node_value_words(aig)
    width = 1 << aig.num_inputs
    for node, node_cuts in cuts.items():
        node_word = values[node]
        for cut in node_cuts:
            for p in range(width):
                leaf_index = 0
                for j, leaf in enumerate(cut.leaves):
                    leaf_index |= ((values[leaf] >> p) & 1) << j
                expected = (node_word >> p) & 1
                got = (cut.table >> leaf_index) & 1
                if expected != got:
                    out.append(
                        f"cut {cut.leaves} of node {node}: table bit "
                        f"{leaf_index} is {got}, simulation says {expected} "
                        f"(pattern {p})"
                    )
                    break  # one message per cut is enough
    return out


# ----------------------------------------------------------------------
# Spot market: closed-form limits and monotonicity
# ----------------------------------------------------------------------
def spot_violations(
    runtime_seconds: float,
    interrupt_rate_per_hour: float,
    checkpoint_interval_seconds: Optional[float] = None,
    fn: Callable[..., float] = spot_expected_runtime,
) -> List[str]:
    """Property checks for the expected-runtime model.

    Invariants: the expectation is at least the nominal runtime, matches
    the closed form ``(e^{lam T} - 1)/lam`` without checkpointing, tends to
    ``T`` as the rate tends to zero, is monotone in the interrupt rate, and
    checkpointing never increases it.
    """
    out: List[str] = []
    T, rate, interval = (
        runtime_seconds,
        interrupt_rate_per_hour,
        checkpoint_interval_seconds,
    )
    expected = fn(T, rate, interval)
    if expected < T * (1.0 - 1e-9) - 1e-9:
        out.append(f"E[T]={expected!r} below nominal runtime {T!r}")
    if T == 0 and expected != 0.0:
        out.append(f"zero-runtime job has nonzero expectation {expected!r}")
    if rate == 0 and not math.isclose(expected, T, rel_tol=1e-12):
        out.append(f"rate=0 expectation {expected!r} != nominal {T!r}")
    if interval is None and rate > 0 and T > 0:
        lam = rate / 3600.0
        closed = math.expm1(lam * T) / lam
        if not math.isclose(expected, closed, rel_tol=1e-9):
            out.append(
                f"closed form mismatch: E[T]={expected!r} vs "
                f"(e^(lam T)-1)/lam={closed!r}"
            )
    # Limit: rate -> 0 recovers the nominal runtime.
    near_zero = fn(T, 1e-9, interval)
    if not math.isclose(near_zero, T, rel_tol=1e-5, abs_tol=1e-6):
        out.append(f"rate->0 limit {near_zero!r} != nominal {T!r}")
    # Monotone in the interrupt rate.
    higher = fn(T, rate * 1.5 + 0.01, interval)
    if higher < expected * (1.0 - 1e-9) - 1e-9:
        out.append(
            f"not monotone in rate: E at higher rate {higher!r} < {expected!r}"
        )
    # Checkpointing never increases the expectation.
    if interval is not None:
        bare = fn(T, rate)
        if expected > bare * (1.0 + 1e-9) + 1e-9:
            out.append(
                f"checkpointing increased E[T]: {expected!r} > {bare!r}"
            )
    return out
