"""Cross-module differential oracles.

Each oracle compares an optimized implementation against an independent
reference and returns a list of human-readable violation messages (empty
when the invariant holds):

* :func:`mckp_violations` — the MCKP dynamic programs
  (:func:`~repro.core.optimize.solve_mckp_dp`,
  :func:`~repro.core.optimize.solve_min_cost_dp`) against the exhaustive
  :func:`~repro.core.optimize.solve_brute_force` reference, plus greedy
  feasibility/optimality sanity,
* :func:`schedule_violations` — list-scheduler output validity (precedence,
  one task per worker at a time) and the Graham makespan bounds
  ``critical_path <= makespan <= work/k + critical_path``,
* :func:`aig_equivalence_violations` — truth-table equivalence of synthesis
  transforms (exhaustive up to 10 inputs, random signatures above),
* :func:`cut_function_violations` — every enumerated cut's truth table
  matches the node function obtained by exhaustive simulation,
* :func:`spot_violations` — closed-form limit and monotonicity checks for
  the spot-market runtime model.

The checkers accept the implementation under test as an injectable
parameter, so the mutation smoke tests can verify that a deliberately
corrupted implementation *is* caught.
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional, Sequence

from ..cloud.events import EventKind
from ..cloud.executor import (
    ExecutionPolicy,
    ExecutionResult,
    PlanExecutor,
    simulate_spot_completion_times,
)
from ..cloud.faults import FaultProfile
from ..cloud.provisioner import DeploymentPlan
from ..cloud.spot import spot_expected_runtime
from ..core.optimize import (
    MCKPTable,
    Selection,
    StageOptions,
    prune_stage_options,
    selection_objective,
    solve_approx,
    solve_brute_force,
    solve_greedy,
    solve_mckp_dp,
    solve_min_cost_dp,
)
from ..eda.cuts import CutSet, enumerate_cuts
from ..eda.synthesis import apply_recipe
from ..eda.truthtables import var_table
from ..netlist.aig import AIG, lit_is_complemented, lit_node
from ..parallel.scheduler import ScheduleResult, list_schedule
from ..parallel.taskgraph import TaskGraph

__all__ = [
    "mckp_violations",
    "schedule_violations",
    "aig_equivalence_violations",
    "recipe_equivalence_violations",
    "cut_function_violations",
    "spot_violations",
    "execution_violations",
    "convergence_violations",
    "exhaustive_output_tables",
    "node_value_words",
    "obs_violations",
    "service_violations",
    "chaos_scenario_violations",
    "fleet_violations",
    "attrib_violations",
    "slo_violations",
]

#: Relative tolerance for floating-point objective comparisons.
REL_TOL = 1e-9
#: Absolute slack for schedule time comparisons.
TIME_EPS = 1e-9
#: Exhaustive simulation is used up to this many primary inputs.
EXHAUSTIVE_INPUT_LIMIT = 10


def _close(a: float, b: float) -> bool:
    return math.isclose(a, b, rel_tol=REL_TOL, abs_tol=1e-12)


# ----------------------------------------------------------------------
# MCKP: DP vs brute force
# ----------------------------------------------------------------------
def _check_selection_shape(
    selection: Selection,
    stages: Sequence[StageOptions],
    capacity: int,
    label: str,
    out: List[str],
) -> None:
    expected = {s.stage for s in stages}
    got = set(selection.choices)
    if got != expected:
        out.append(f"{label}: covers stages {sorted(got)} != {sorted(expected)}")
        return
    for stage_opts in stages:
        if selection.choices[stage_opts.stage] not in stage_opts.options:
            out.append(
                f"{label}: stage {stage_opts.stage.value} option not in its menu"
            )
    if selection.total_runtime > capacity:
        out.append(
            f"{label}: total runtime {selection.total_runtime} exceeds "
            f"deadline {capacity}"
        )


def mckp_violations(
    stages: Sequence[StageOptions],
    deadline_seconds: float,
    solver: Callable[..., Optional[Selection]] = solve_mckp_dp,
    min_cost_solver: Callable[..., Optional[Selection]] = solve_min_cost_dp,
) -> List[str]:
    """Differential check of both DP objectives against brute force."""
    out: List[str] = []
    capacity = int(math.floor(deadline_seconds))
    for maximize, impl, label in (
        (True, solver, "mckp-dp"),
        (False, min_cost_solver, "min-cost-dp"),
    ):
        reference = solve_brute_force(stages, deadline_seconds, maximize)
        candidate = impl(stages, deadline_seconds)
        if (reference is None) != (candidate is None):
            out.append(
                f"{label}: feasibility mismatch (brute force "
                f"{'in' if reference is None else ''}feasible, dp "
                f"{'in' if candidate is None else ''}feasible)"
            )
            continue
        if reference is None or candidate is None:
            continue
        _check_selection_shape(candidate, stages, capacity, label, out)
        ref_obj = selection_objective(reference, maximize)
        cand_obj = selection_objective(candidate, maximize)
        if not _close(ref_obj, cand_obj):
            out.append(
                f"{label}: objective {cand_obj!r} != brute-force optimum "
                f"{ref_obj!r}"
            )
    # Greedy is a heuristic: it must agree on feasibility, stay feasible,
    # and never beat the true min-cost optimum.
    greedy = solve_greedy(stages, deadline_seconds)
    reference = solve_brute_force(stages, deadline_seconds, False)
    if (reference is None) != (greedy is None):
        out.append("greedy: feasibility mismatch vs brute force")
    elif greedy is not None and reference is not None:
        _check_selection_shape(greedy, stages, capacity, "greedy", out)
        if greedy.total_cost < reference.total_cost * (1.0 - REL_TOL) - 1e-12:
            out.append(
                f"greedy: cost {greedy.total_cost!r} beats the optimum "
                f"{reference.total_cost!r}"
            )
    return out


# ----------------------------------------------------------------------
# Scheduler: validity + Graham bounds
# ----------------------------------------------------------------------
def schedule_violations(
    graph: TaskGraph,
    workers: int,
    result: Optional[ScheduleResult] = None,
) -> List[str]:
    """Check a schedule for validity and makespan bounds.

    With ``result=None`` the schedule is produced by
    :func:`~repro.parallel.scheduler.list_schedule`; the mutation tests
    pass a tampered result instead.
    """
    out: List[str] = []
    if result is None:
        result = list_schedule(graph, workers)
    tasks = graph.tasks
    task_ids = {t.task_id for t in tasks}
    if set(result.start_times) != task_ids or set(result.finish_times) != task_ids:
        out.append("schedule: not every task was scheduled exactly once")
        return out
    by_task = {t.task_id: t for t in tasks}
    for tid, task in by_task.items():
        start = result.start_times[tid]
        finish = result.finish_times[tid]
        if start < -TIME_EPS:
            out.append(f"task {tid}: negative start time {start!r}")
        if not math.isclose(
            finish - start, task.work, rel_tol=1e-9, abs_tol=TIME_EPS
        ):
            out.append(
                f"task {tid}: duration {finish - start!r} != work {task.work!r}"
            )
        for dep in task.deps:
            if start < result.finish_times[dep] - TIME_EPS:
                out.append(
                    f"task {tid}: starts at {start!r} before dependency "
                    f"{dep} finishes at {result.finish_times[dep]!r}"
                )
    # One task per worker at a time.
    per_worker: dict = {}
    for tid, worker in result.worker_of.items():
        per_worker.setdefault(worker, []).append(tid)
    if tasks and set(result.worker_of) != task_ids:
        out.append("schedule: worker assignment missing tasks")
    for worker, tids in per_worker.items():
        if not 0 <= worker < workers:
            out.append(f"schedule: unknown worker id {worker}")
        tids.sort(key=lambda t: result.start_times[t])
        for prev, cur in zip(tids, tids[1:]):
            if result.start_times[cur] < result.finish_times[prev] - TIME_EPS:
                out.append(
                    f"worker {worker}: tasks {prev} and {cur} overlap "
                    f"({result.finish_times[prev]!r} > "
                    f"{result.start_times[cur]!r})"
                )
    # Makespan bookkeeping and Graham bounds.
    if tasks:
        true_makespan = max(result.finish_times.values())
        if not math.isclose(
            result.makespan, true_makespan, rel_tol=1e-9, abs_tol=TIME_EPS
        ):
            out.append(
                f"schedule: makespan {result.makespan!r} != max finish "
                f"{true_makespan!r}"
            )
    critical = graph.critical_path()
    lower = max(critical, graph.total_work / workers)
    if result.makespan < lower - TIME_EPS - 1e-9 * lower:
        out.append(
            f"schedule: makespan {result.makespan!r} below lower bound "
            f"{lower!r}"
        )
    upper = graph.total_work / workers + critical
    if result.makespan > upper + TIME_EPS + 1e-9 * upper:
        out.append(
            f"schedule: makespan {result.makespan!r} exceeds Graham bound "
            f"{upper!r}"
        )
    return out


# ----------------------------------------------------------------------
# AIG: truth-table equivalence
# ----------------------------------------------------------------------
def exhaustive_output_tables(aig: AIG) -> List[int]:
    """Per-output truth tables over all ``2**num_inputs`` patterns."""
    n = aig.num_inputs
    if n > EXHAUSTIVE_INPUT_LIMIT:
        raise ValueError(
            f"{n} inputs exceed the exhaustive limit {EXHAUSTIVE_INPUT_LIMIT}"
        )
    words = [var_table(j, n) for j in range(n)]
    return aig.simulate(words, width=1 << n)


def _signature_tables(aig: AIG, patterns: int, seed: int) -> List[int]:
    return aig.random_simulation_signature(patterns=patterns, seed=seed)


def aig_equivalence_violations(
    original: AIG,
    transformed: AIG,
    label: str = "transform",
    signature_patterns: int = 256,
    signature_seed: int = 0,
) -> List[str]:
    """Check that a synthesis transform preserved the logic function.

    Uses exhaustive truth tables when the input count allows (complete
    equivalence), otherwise bit-parallel random-signature comparison (a
    one-sided check: equal signatures do not prove equivalence, unequal
    signatures disprove it).
    """
    out: List[str] = []
    if original.num_inputs != transformed.num_inputs:
        out.append(
            f"{label}: input count changed "
            f"{original.num_inputs} -> {transformed.num_inputs}"
        )
        return out
    if original.num_outputs != transformed.num_outputs:
        out.append(
            f"{label}: output count changed "
            f"{original.num_outputs} -> {transformed.num_outputs}"
        )
        return out
    if original.num_inputs <= EXHAUSTIVE_INPUT_LIMIT:
        before = exhaustive_output_tables(original)
        after = exhaustive_output_tables(transformed)
        how = "exhaustive"
    else:
        before = _signature_tables(original, signature_patterns, signature_seed)
        after = _signature_tables(transformed, signature_patterns, signature_seed)
        how = f"{signature_patterns}-pattern signature"
    for idx, (b, a) in enumerate(zip(before, after)):
        if b != a:
            out.append(
                f"{label}: output {idx} function changed ({how} mismatch, "
                f"differing bits {bin(b ^ a).count('1')})"
            )
    return out


def recipe_equivalence_violations(
    aig: AIG, recipe: Sequence[str], seed: int
) -> List[str]:
    """Run a synthesis recipe and check function preservation."""
    transformed = apply_recipe(aig, recipe, seed=seed)
    return aig_equivalence_violations(
        aig, transformed, label=f"recipe {'/'.join(recipe)}@{seed}"
    )


# ----------------------------------------------------------------------
# Cuts: every cut table matches the node function
# ----------------------------------------------------------------------
def node_value_words(aig: AIG) -> List[int]:
    """Exhaustive simulation value word for *every* node (not just outputs)."""
    n = aig.num_inputs
    if n > EXHAUSTIVE_INPUT_LIMIT:
        raise ValueError(
            f"{n} inputs exceed the exhaustive limit {EXHAUSTIVE_INPUT_LIMIT}"
        )
    width = 1 << n
    mask = (1 << width) - 1
    values = [0] * aig.size
    for j, node in enumerate(aig.inputs):
        values[node] = var_table(j, n)
    for node in aig.and_nodes():
        a, b = aig.fanins(node)
        va = values[lit_node(a)] ^ (mask if lit_is_complemented(a) else 0)
        vb = values[lit_node(b)] ^ (mask if lit_is_complemented(b) else 0)
        values[node] = va & vb
    return values


def cut_function_violations(
    aig: AIG,
    k: int = 4,
    cap: int = 6,
    cuts: Optional[CutSet] = None,
) -> List[str]:
    """Check every enumerated cut's truth table against exhaustive simulation.

    For each node and each of its cuts, the node's simulated value under
    every input pattern must equal the cut table entry indexed by the
    leaves' simulated values.  ``cuts`` may be supplied pre-tampered by the
    mutation tests.
    """
    out: List[str] = []
    if cuts is None:
        cuts, _ = enumerate_cuts(aig, k=k, cap=cap)
    values = node_value_words(aig)
    width = 1 << aig.num_inputs
    for node, node_cuts in cuts.items():
        node_word = values[node]
        for cut in node_cuts:
            for p in range(width):
                leaf_index = 0
                for j, leaf in enumerate(cut.leaves):
                    leaf_index |= ((values[leaf] >> p) & 1) << j
                expected = (node_word >> p) & 1
                got = (cut.table >> leaf_index) & 1
                if expected != got:
                    out.append(
                        f"cut {cut.leaves} of node {node}: table bit "
                        f"{leaf_index} is {got}, simulation says {expected} "
                        f"(pattern {p})"
                    )
                    break  # one message per cut is enough
    return out


# ----------------------------------------------------------------------
# Executor: trace validity, determinism, billing consistency
# ----------------------------------------------------------------------
def execution_violations(
    plan: DeploymentPlan,
    deadline_seconds: float,
    profile: FaultProfile,
    policy: ExecutionPolicy,
    seed: int,
    stage_options: Optional[Sequence] = None,
    result: Optional[ExecutionResult] = None,
) -> List[str]:
    """Audit one plan execution against the robustness invariants.

    With ``result=None`` the executor runs twice from the same seed (the
    determinism check is part of the oracle); the mutation tests pass a
    tampered :class:`ExecutionResult` instead.  Checks: event causality
    (monotone time, no stage starting before its predecessor commits),
    retry and preemption counts within policy, billing consistency (final
    cost equals the sum of billed segments equals the trace's billed
    events), completion bookkeeping, and — with faults disabled — exact
    reproduction of the plan's nominal runtime and cost.
    """
    out: List[str] = []
    if result is None:
        result = PlanExecutor(profile, policy).execute(
            plan, deadline_seconds, seed=seed, stage_options=stage_options
        )
        again = PlanExecutor(profile, policy).execute(
            plan, deadline_seconds, seed=seed, stage_options=stage_options
        )
        if again.trace.events != result.trace.events:
            out.append("executor: same seed produced a different trace")
    trace = result.trace
    events = trace.events

    for prev, e in zip(events, events[1:]):
        if e.seq != prev.seq + 1:
            out.append(f"trace: seq jumps {prev.seq} -> {e.seq}")
        if e.time < prev.time - TIME_EPS:
            out.append(
                f"trace: time goes backwards at seq {e.seq} "
                f"({prev.time!r} -> {e.time!r})"
            )

    # Causality: stages are strictly serial — a stage may only start once
    # the previous one has committed.
    open_stage: Optional[str] = None
    commits: List[str] = []
    for e in events:
        if e.kind == EventKind.STAGE_START:
            if open_stage is not None:
                out.append(
                    f"trace: stage {e.stage} starts before {open_stage} commits"
                )
            open_stage = e.stage
        elif e.kind == EventKind.STAGE_COMMIT:
            if open_stage != e.stage:
                out.append(f"trace: commit of {e.stage} without an open start")
            commits.append(e.stage)
            open_stage = None

    # Policy bounds: retries and preemptions never exceed configuration.
    cap = policy.max_preemptions_per_stage
    for stage in sorted({e.stage for e in events if e.stage}):
        backoffs = trace.count(EventKind.BACKOFF, stage)
        if backoffs > policy.retry.max_retries:
            out.append(
                f"stage {stage}: {backoffs} retries exceed policy "
                f"max_retries={policy.retry.max_retries}"
            )
        failures = trace.count(EventKind.BOOT_FAILURE, stage) + trace.count(
            EventKind.API_ERROR, stage
        )
        if failures > policy.retry.max_retries + 1:
            out.append(
                f"stage {stage}: {failures} provisioning failures exceed "
                f"the retry budget"
            )
        preemptions = trace.preemptions(stage)
        if cap is not None and preemptions > cap:
            out.append(
                f"stage {stage}: {preemptions} preemptions exceed the "
                f"fallback cap {cap}"
            )

    # Billing: one source of truth, three views of it.
    segment_cost = sum(s.cost for s in result.segments)
    if not _close(result.total_cost, segment_cost):
        out.append(
            f"billing: total cost {result.total_cost!r} != sum of billed "
            f"segments {segment_cost!r}"
        )
    if not _close(result.total_cost, trace.billed_cost):
        out.append(
            f"billing: total cost {result.total_cost!r} != trace billed "
            f"cost {trace.billed_cost!r}"
        )

    # Completion bookkeeping.
    n_stages = len(plan.assignments)
    if result.completed:
        if len(commits) != n_stages:
            out.append(
                f"completed flow committed {len(commits)} of {n_stages} stages"
            )
        if trace.count(EventKind.FLOW_COMPLETE) != 1:
            out.append("completed flow lacks a flow_complete event")
    else:
        if trace.count(EventKind.FLOW_FAIL) != 1:
            out.append("failed flow lacks a flow_fail event")
        if trace.count(EventKind.STAGE_ABORT) < 1:
            out.append("failed flow lacks a stage_abort event")
    if events and abs(result.total_time - events[-1].time) > 1e-6:
        out.append(
            f"total time {result.total_time!r} != last event time "
            f"{events[-1].time!r}"
        )

    # Fault-free executions reproduce the plan exactly.
    if profile.fault_free:
        if not math.isclose(
            result.total_time, plan.total_runtime, rel_tol=1e-12, abs_tol=1e-9
        ):
            out.append(
                f"fault-free run took {result.total_time!r}, plan nominal "
                f"is {plan.total_runtime!r}"
            )
        if not _close(result.total_cost, plan.total_cost):
            out.append(
                f"fault-free run cost {result.total_cost!r}, plan cost "
                f"is {plan.total_cost!r}"
            )
        if trace.preemptions() != 0:
            out.append("fault-free run recorded preemptions")
    return out


def convergence_violations(
    runtime_seconds: float,
    interrupt_rate_per_hour: float,
    checkpoint_interval_seconds: Optional[float] = None,
    trials: int = 500,
    seed: int = 0,
    rel_tol: float = 0.05,
    simulate: Callable[..., List[float]] = simulate_spot_completion_times,
) -> List[str]:
    """Monte-Carlo executor vs the closed-form spot runtime model.

    The executor's checkpoint/restart semantics under Poisson preemptions
    must *be* the process :func:`spot_expected_runtime` takes the
    expectation of — so the mean of ``trials`` simulated completions has
    to land within ``rel_tol`` of the closed form, and no completion may
    beat the nominal runtime.
    """
    import zlib

    out: List[str] = []
    times = simulate(
        runtime_seconds,
        interrupt_rate_per_hour,
        checkpoint_interval_seconds,
        trials=trials,
        seed=seed,
    )
    if len(times) != trials:
        out.append(f"simulator returned {len(times)} of {trials} trials")
        return out
    below = sum(1 for t in times if t < runtime_seconds * (1.0 - 1e-9))
    if below:
        out.append(
            f"{below} of {trials} completions beat the nominal runtime "
            f"{runtime_seconds!r}"
        )
    expected = spot_expected_runtime(
        runtime_seconds, interrupt_rate_per_hour, checkpoint_interval_seconds
    )
    # A correct executor's estimator is unbiased but noisy (restart
    # distributions are heavy-tailed).  When the first batch is not
    # comfortably inside the tolerance band, extend the sample with
    # further seed-derived batches — deterministic, and the mean of a
    # faithful simulator tightens toward the closed form, while a biased
    # one stays out.
    mean = sum(times) / len(times)
    batches = 1
    while (
        abs(mean - expected) > 0.6 * rel_tol * expected
        and len(times) < 8 * trials
    ):
        extend_seed = zlib.crc32(f"extend:{seed}:{batches}".encode())
        times.extend(
            simulate(
                runtime_seconds,
                interrupt_rate_per_hour,
                checkpoint_interval_seconds,
                trials=trials,
                seed=extend_seed,
            )
        )
        batches += 1
        mean = sum(times) / len(times)
    if abs(mean - expected) > rel_tol * expected:
        out.append(
            f"mean simulated completion {mean!r} deviates from the closed "
            f"form {expected!r} by {abs(mean - expected) / expected:.2%} "
            f"(> {rel_tol:.0%} over {len(times)} trials)"
        )
    return out


# ----------------------------------------------------------------------
# Spot market: closed-form limits and monotonicity
# ----------------------------------------------------------------------
def spot_violations(
    runtime_seconds: float,
    interrupt_rate_per_hour: float,
    checkpoint_interval_seconds: Optional[float] = None,
    fn: Callable[..., float] = spot_expected_runtime,
) -> List[str]:
    """Property checks for the expected-runtime model.

    Invariants: the expectation is at least the nominal runtime, matches
    the closed form ``(e^{lam T} - 1)/lam`` without checkpointing, tends to
    ``T`` as the rate tends to zero, is monotone in the interrupt rate, and
    checkpointing never increases it.
    """
    out: List[str] = []
    T, rate, interval = (
        runtime_seconds,
        interrupt_rate_per_hour,
        checkpoint_interval_seconds,
    )
    expected = fn(T, rate, interval)
    if expected < T * (1.0 - 1e-9) - 1e-9:
        out.append(f"E[T]={expected!r} below nominal runtime {T!r}")
    if T == 0 and expected != 0.0:
        out.append(f"zero-runtime job has nonzero expectation {expected!r}")
    if rate == 0 and not math.isclose(expected, T, rel_tol=1e-12):
        out.append(f"rate=0 expectation {expected!r} != nominal {T!r}")
    if interval is None and rate > 0 and T > 0:
        lam = rate / 3600.0
        closed = math.expm1(lam * T) / lam
        if not math.isclose(expected, closed, rel_tol=1e-9):
            out.append(
                f"closed form mismatch: E[T]={expected!r} vs "
                f"(e^(lam T)-1)/lam={closed!r}"
            )
    # Limit: rate -> 0 recovers the nominal runtime.
    near_zero = fn(T, 1e-9, interval)
    if not math.isclose(near_zero, T, rel_tol=1e-5, abs_tol=1e-6):
        out.append(f"rate->0 limit {near_zero!r} != nominal {T!r}")
    # Monotone in the interrupt rate.
    higher = fn(T, rate * 1.5 + 0.01, interval)
    if higher < expected * (1.0 - 1e-9) - 1e-9:
        out.append(
            f"not monotone in rate: E at higher rate {higher!r} < {expected!r}"
        )
    # Checkpointing never increases the expectation.
    if interval is not None:
        bare = fn(T, rate)
        if expected > bare * (1.0 + 1e-9) + 1e-9:
            out.append(
                f"checkpointing increased E[T]: {expected!r} > {bare!r}"
            )
    return out


# ----------------------------------------------------------------------
# Observability: obs telemetry vs the executor's own trace
# ----------------------------------------------------------------------
def obs_violations(
    plan: DeploymentPlan,
    deadline_seconds: float,
    profile: FaultProfile,
    policy: ExecutionPolicy,
    seed: int,
    stage_options: Optional[Sequence] = None,
) -> List[str]:
    """Cross-check ``repro.obs`` telemetry against the execution trace.

    Runs one seeded execution under a fresh deterministic tracer and a
    fresh metric registry and asserts the two independent recording
    paths agree *exactly*:

    * the ``executor.billed_seconds`` / ``executor.billed_cost`` counters
      equal the trace's billed-event totals (same floats, same order, so
      ``==`` — not approximate),
    * the number of ``preemption`` span instants equals the trace's
      preemption count (same for fallbacks),
    * the recorded spans form a well-nested tree with one span per
      committed stage.
    """
    from ..obs import MetricsRegistry, Tracer, scoped
    from ..obs.spans import well_nested_violations

    out: List[str] = []
    tracer = Tracer(deterministic=True)
    registry = MetricsRegistry()
    with scoped(tracer=tracer, metrics=registry):
        result = PlanExecutor(profile, policy).execute(
            plan, deadline_seconds, seed=seed, stage_options=stage_options
        )
    trace = result.trace
    snap = registry.snapshot()

    billed_seconds = snap.counters.get("executor.billed_seconds", 0.0)
    if billed_seconds != trace.billed_seconds:
        out.append(
            f"obs: billed-seconds counter {billed_seconds!r} != trace "
            f"billed total {trace.billed_seconds!r}"
        )
    billed_cost = snap.counters.get("executor.billed_cost", 0.0)
    if billed_cost != trace.billed_cost:
        out.append(
            f"obs: billed-cost counter {billed_cost!r} != trace billed "
            f"cost {trace.billed_cost!r}"
        )

    instants = [e for s in tracer.spans for e in s.events]
    for name, expected in (
        (EventKind.PREEMPTION.value, trace.preemptions()),
        (EventKind.FALLBACK.value, trace.count(EventKind.FALLBACK)),
        (EventKind.BACKOFF.value, trace.count(EventKind.BACKOFF)),
    ):
        got = sum(1 for e in instants if e.name == name)
        if got != expected:
            out.append(
                f"obs: {got} {name!r} span instants != {expected} trace events"
            )

    out.extend(f"obs: {v}" for v in well_nested_violations(tracer.spans))

    stage_spans = [s for s in tracer.spans if s.name.startswith("stage.")]
    committed = sum(1 for r in result.stage_records if r.committed)
    if len(stage_spans) != committed + (0 if result.completed else 1):
        # An aborted stage still opens a span before failing.
        aborted = 0 if result.completed else 1
        out.append(
            f"obs: {len(stage_spans)} stage spans != {committed} committed "
            f"stages + {aborted} aborted"
        )
    return out


# ----------------------------------------------------------------------
# Service layer: multi-job billing + deterministic scheduling
# ----------------------------------------------------------------------
def service_violations(requests: Sequence, workers: int, depth: int) -> List[str]:
    """Audit one seeded service session against its own invariants.

    Extends the single-run obs billing oracle to *multi-job* sessions:

    * **admission bound** — with whole-batch admission (every submit
      lands before the first worker step) and no rate limiter, exactly
      ``min(len(requests), depth)`` jobs are admitted and every
      rejection is a typed ``queue_full``;
    * **slot accounting** — after drain, every acquired worker slot was
      released and no worker is active (the no-leak invariant);
    * **per-job billing** — for every executed job, the
      ``executor.billed_seconds`` / ``executor.billed_cost`` counters in
      the job's *own* scoped registry equal the job result's trace
      totals exactly (``==``, not approximately): two independent
      recording paths, per job, under concurrency;
    * **replay determinism** — a second session from the same requests
      produces the identical completion order and byte-identical
      session log;
    * **priority order** — with one worker, completion order is exactly
      ``sorted by (-priority, admission seq)``.
    """
    from ..service import ServiceConfig, run_session, session_log

    out: List[str] = []
    config = ServiceConfig(workers=workers, queue_depth=depth)
    first = run_session(requests, config)
    service = first.service

    expected_admits = min(len(requests), depth)
    if first.accepted != expected_admits:
        out.append(
            f"service: {first.accepted} admitted != expected "
            f"{expected_admits} (batch {len(requests)}, depth {depth})"
        )
    for outcome in first.outcomes:
        if not outcome.get("accepted"):
            code = outcome.get("error", {}).get("code")
            if code != "queue_full":
                out.append(
                    f"service: rejection code {code!r}, expected 'queue_full'"
                )

    pool = service.pool
    if pool.active != 0:
        out.append(f"service: {pool.active} workers still active after drain")
    if pool.slots_acquired != pool.slots_released:
        out.append(
            f"service: slot leak — {pool.slots_acquired} acquired vs "
            f"{pool.slots_released} released"
        )
    non_terminal = [
        job.job_id for job in service.jobs.values() if not job.terminal
    ]
    if non_terminal:
        out.append(f"service: non-terminal jobs after drain: {non_terminal}")

    for job in service.jobs.values():
        counters = job.metrics.get("counters", {})
        billed_seconds = counters.get("executor.billed_seconds", 0.0)
        billed_cost = counters.get("executor.billed_cost", 0.0)
        result = job.result or {}
        if result.get("kind") == "pipeline":
            result = result.get("execution") or {}
        if result.get("feasible") is False:
            result = {}
        trace_seconds = result.get("billed_seconds", 0.0)
        trace_cost = result.get("billed_cost", 0.0)
        if billed_seconds != trace_seconds:
            out.append(
                f"service: {job.job_id} billed-seconds counter "
                f"{billed_seconds!r} != trace total {trace_seconds!r}"
            )
        if billed_cost != trace_cost:
            out.append(
                f"service: {job.job_id} billed-cost counter "
                f"{billed_cost!r} != trace total {trace_cost!r}"
            )

    second = run_session(requests, config)
    if second.completion_order != first.completion_order:
        out.append(
            f"service: completion order not deterministic — "
            f"{first.completion_order} then {second.completion_order}"
        )
    if session_log(second.service) != session_log(service):
        out.append("service: session log not byte-stable across replays")

    if workers == 1:
        admitted = [
            job for job in service.jobs.values() if job.worker is not None
        ]
        expected_order = [
            job.job_id
            for job in sorted(
                admitted, key=lambda j: (-j.request.priority, j.seq)
            )
        ]
        ran_order = [
            job_id for job_id in service.terminal_order
            if service.jobs[job_id].worker is not None
        ]
        if ran_order != expected_order:
            out.append(
                f"service: 1-worker completion order {ran_order} != "
                f"priority/FIFO order {expected_order}"
            )
    return out


# ----------------------------------------------------------------------
# Chaos scenarios: graceful degradation under correlated faults
# ----------------------------------------------------------------------
def chaos_scenario_violations(
    name: str, severity: float, seed: int
) -> List[str]:
    """Audit one chaos-scenario run against its degradation guarantees.

    * **replay determinism** — the same (scenario, severity, seed) must
      reproduce the byte-identical :meth:`trace_dump` (execution trace,
      baseline trace, service log, verdict line);
    * **zero-severity anchor** — at severity 0 the chaos executor's
      trace is byte-identical to the fault-free base
      :class:`~repro.cloud.executor.PlanExecutor` on the same plan, the
      overruns are exactly zero, and the storm session evicts nobody;
    * **bounded degradation** — a *completed* run's time/cost overrun
      versus its severity-zero baseline sits inside
      :func:`~repro.chaos.engine.degradation_bound`, and the bound
      itself is monotone non-decreasing in severity;
    * **abort legitimacy** — a failed run must show a ``stage_abort``
      event (the retry budget genuinely ran out; nothing vanished);
    * **billing three-view** — result total == segment sum == trace
      billed total, exactly (transfer billing included);
    * **slot accounting** — the storm session's pool released every
      slot it acquired and left every job terminal, evictions and
      requeues included.
    """
    from ..chaos import degradation_bound, run_scenario
    from ..chaos.scenarios import SCENARIOS, _build_workload
    from ..chaos.topology import default_topology

    out: List[str] = []
    result = run_scenario(name, severity=severity, seed=seed)
    replay = run_scenario(name, severity=severity, seed=seed)
    if result.trace_dump() != replay.trace_dump():
        out.append(
            f"scenario: {name} severity={severity!r} seed={seed} trace "
            f"dump not byte-stable across replays"
        )

    zero = run_scenario(name, severity=0.0, seed=seed)
    scenario = SCENARIOS[name]
    topology = default_topology()
    menu, plan, deadline = _build_workload(scenario, topology)
    base = PlanExecutor(FaultProfile.none(), scenario.policy).execute(
        plan, deadline_seconds=deadline, seed=seed, stage_options=menu
    )
    if zero.execution.trace.to_jsonl() != base.trace.to_jsonl():
        out.append(
            f"scenario: {name} seed={seed} severity-0 trace differs from "
            f"the fault-free base executor"
        )
    if zero.time_overrun != 0.0 or zero.cost_overrun != 0.0:
        out.append(
            f"scenario: {name} seed={seed} severity-0 overrun nonzero: "
            f"time {zero.time_overrun!r}, cost {zero.cost_overrun!r}"
        )
    if zero.storm.evictions:
        out.append(
            f"scenario: {name} seed={seed} severity-0 storm session "
            f"evicted {sorted(zero.storm.evictions)}"
        )

    if result.execution.completed:
        if not result.within_bounds:
            out.append(
                f"scenario: {name} severity={severity!r} seed={seed} "
                f"overrun (time {result.time_overrun!r}, cost "
                f"{result.cost_overrun!r}) exceeds bound "
                f"(time {result.bound.time_overrun!r}, cost "
                f"{result.bound.cost_overrun!r})"
            )
    elif result.execution.trace.count(EventKind.STAGE_ABORT) == 0:
        out.append(
            f"scenario: {name} severity={severity!r} seed={seed} failed "
            f"without a stage_abort event — retries did not run out"
        )

    prev_time = prev_cost = -1.0
    for s in (0.0, 0.25, 0.5, 1.0):
        b = degradation_bound(
            plan, scenario.policy, scenario.spec, topology, s,
            stage_options=menu,
        )
        if b.time_overrun < prev_time - 1e-12 or b.cost_overrun < prev_cost - 1e-12:
            out.append(
                f"scenario: {name} bound not monotone at severity {s!r}: "
                f"(time {b.time_overrun!r}, cost {b.cost_overrun!r}) after "
                f"(time {prev_time!r}, cost {prev_cost!r})"
            )
        prev_time, prev_cost = b.time_overrun, b.cost_overrun

    for label, res in (("run", result.execution), ("baseline", result.baseline)):
        seg_sum = sum(seg.cost for seg in res.segments)
        if not (res.total_cost == seg_sum == res.trace.billed_cost):
            out.append(
                f"scenario: {name} severity={severity!r} seed={seed} "
                f"{label} billing views disagree: total {res.total_cost!r}, "
                f"segments {seg_sum!r}, trace {res.trace.billed_cost!r}"
            )

    pool = result.storm.service.pool
    if pool.active != 0:
        out.append(
            f"scenario: {name} seed={seed} storm pool left "
            f"{pool.active} active workers"
        )
    if pool.slots_acquired != pool.slots_released:
        out.append(
            f"scenario: {name} seed={seed} storm slot leak — "
            f"{pool.slots_acquired} acquired vs {pool.slots_released} released"
        )
    non_terminal = [
        job.job_id
        for job in result.storm.service.jobs.values()
        if not job.terminal
    ]
    if non_terminal:
        out.append(
            f"scenario: {name} seed={seed} non-terminal storm jobs: "
            f"{non_terminal}"
        )
    return out


# ----------------------------------------------------------------------
# Fleet planner: table reuse, pruning, certified approximation
# ----------------------------------------------------------------------
def _choice_map(selection: Selection):
    return {
        stage.value: (opt.vm.name, opt.runtime_seconds)
        for stage, opt in selection.choices.items()
    }


def fleet_violations(menus, flows) -> List[str]:
    """Audit every fleet amortization against fresh exact solves.

    * **dominance pruning** — for every ``(menu, deadline)`` a flow
      prices, the DP on the pruned menu agrees with the DP on the raw
      menu: same feasibility, and both the inverse-price and the
      min-cost objectives match within :data:`REL_TOL` (alternate
      optimal selections may differ; optima may not);
    * **table reuse** — one :class:`~repro.core.optimize.MCKPTable`
      built at a menu's *largest* deadline answers every smaller
      deadline with the *identical* selection a fresh
      :func:`~repro.core.optimize.solve_mckp_dp` call returns (exact
      choice-by-choice identity, not just objective equality);
    * **certified approximation** — :func:`~repro.core.optimize.solve_approx`
      agrees with the DP on feasibility, returns a menu-valid selection
      within deadline, never beats the true optimum, and its
      ``upper_bound`` / ``certified_gap`` dominate the true optimum /
      true gap (the bound is *certified*: it may be loose, never wrong);
    * **planner consistency** — a :class:`~repro.fleet.FleetPlanner` in
      exact mode reproduces the fresh pruned-menu DP selection for every
      group (so batching, grouping, and cross-call cell caching change
      nothing), a second ``plan()`` over the same flows emits a
      byte-identical dump, and approx-mode group gaps dominate their
      true gaps.
    """
    from ..fleet import FleetPlanner

    out: List[str] = []
    deadlines = {}
    for spec in flows:
        deadlines.setdefault(spec.menu_id, set()).add(
            int(spec.deadline_seconds)
        )

    pruned_menus = {}
    for menu_id in sorted(deadlines):
        stages = menus[menu_id]
        pruned, _ = prune_stage_options(stages)
        pruned_menus[menu_id] = pruned
        dls = sorted(deadlines[menu_id])
        table = MCKPTable(pruned, dls[-1])
        for deadline in dls:
            raw_sol = solve_mckp_dp(stages, deadline)
            pruned_sol = solve_mckp_dp(pruned, deadline)
            if (raw_sol is None) != (pruned_sol is None):
                out.append(
                    f"fleet: {menu_id}@{deadline} pruning changed "
                    f"feasibility (raw {raw_sol is not None}, "
                    f"pruned {pruned_sol is not None})"
                )
                continue
            if raw_sol is not None:
                if not _close(
                    raw_sol.objective_inverse_price,
                    pruned_sol.objective_inverse_price,
                ):
                    out.append(
                        f"fleet: {menu_id}@{deadline} pruning changed the "
                        f"DP optimum: raw "
                        f"{raw_sol.objective_inverse_price!r} vs pruned "
                        f"{pruned_sol.objective_inverse_price!r}"
                    )
                raw_cost = solve_min_cost_dp(stages, deadline)
                pruned_cost = solve_min_cost_dp(pruned, deadline)
                if raw_cost is not None and pruned_cost is not None:
                    if not _close(
                        raw_cost.total_cost, pruned_cost.total_cost
                    ):
                        out.append(
                            f"fleet: {menu_id}@{deadline} pruning changed "
                            f"the min-cost optimum: "
                            f"{raw_cost.total_cost!r} vs "
                            f"{pruned_cost.total_cost!r}"
                        )

            reused = table.query(deadline)
            if (reused is None) != (pruned_sol is None):
                out.append(
                    f"fleet: {menu_id}@{deadline} table reuse changed "
                    f"feasibility"
                )
            elif reused is not None and _choice_map(reused) != _choice_map(
                pruned_sol
            ):
                out.append(
                    f"fleet: {menu_id}@{deadline} table built at "
                    f"{dls[-1]} answers {_choice_map(reused)} but a fresh "
                    f"solve picks {_choice_map(pruned_sol)}"
                )

            approx = solve_approx(pruned, deadline)
            if (approx is None) != (pruned_sol is None):
                out.append(
                    f"fleet: {menu_id}@{deadline} approx feasibility "
                    f"{approx is not None} != exact {pruned_sol is not None}"
                )
            elif approx is not None:
                _check_selection_shape(
                    approx.selection,
                    pruned,
                    deadline,
                    f"fleet approx {menu_id}@{deadline}",
                    out,
                )
                opt = pruned_sol.objective_inverse_price
                # Gap comparisons difference two near-equal sums, so the
                # slack must scale with the optimum, not with the gap.
                tol = REL_TOL * max(1.0, abs(opt))
                if approx.objective > opt + tol:
                    out.append(
                        f"fleet: {menu_id}@{deadline} approx objective "
                        f"{approx.objective!r} beats the DP optimum {opt!r}"
                    )
                if approx.upper_bound < opt - tol:
                    out.append(
                        f"fleet: {menu_id}@{deadline} certified upper "
                        f"bound {approx.upper_bound!r} below the DP "
                        f"optimum {opt!r}"
                    )
                true_gap = opt - approx.objective
                if approx.certified_gap < true_gap - tol:
                    out.append(
                        f"fleet: {menu_id}@{deadline} certified gap "
                        f"{approx.certified_gap!r} below the true gap "
                        f"{true_gap!r}"
                    )

    planner = FleetPlanner(mode="exact")
    for menu_id in sorted(menus):
        planner.register_menu(menu_id, menus[menu_id])
    plan = planner.plan(flows)
    if plan.stats.flows != len(list(flows)):
        out.append(
            f"fleet: planner saw {plan.stats.flows} flows, expected "
            f"{len(list(flows))}"
        )
    for group in plan.groups:
        fresh = solve_mckp_dp(pruned_menus[group.menu_id], group.capacity)
        if group.feasible != (fresh is not None):
            out.append(
                f"fleet: planner group {group.menu_id}@{group.capacity} "
                f"feasible={group.feasible} but fresh solve "
                f"{'found' if fresh else 'found no'} selection"
            )
        elif fresh is not None and _choice_map(group.selection) != _choice_map(
            fresh
        ):
            out.append(
                f"fleet: planner group {group.menu_id}@{group.capacity} "
                f"selection {_choice_map(group.selection)} != fresh "
                f"{_choice_map(fresh)}"
            )
    # The dump header carries per-call work counters (tables built this
    # call), which legitimately drop to zero on a cached re-plan; the
    # *plan* — every group line — must be byte-identical.
    replan = planner.plan(flows)
    if (
        replan.dump().split("\n", 1)[1] != plan.dump().split("\n", 1)[1]
        or replan.total_cost != plan.total_cost
    ):
        out.append("fleet: second plan() over cached cells changed the plan")

    approx_planner = FleetPlanner(mode="approx")
    for menu_id in sorted(menus):
        approx_planner.register_menu(menu_id, menus[menu_id])
    approx_plan = approx_planner.plan(flows)
    for group in approx_plan.groups:
        fresh = solve_mckp_dp(pruned_menus[group.menu_id], group.capacity)
        if group.feasible != (fresh is not None):
            out.append(
                f"fleet: approx planner group "
                f"{group.menu_id}@{group.capacity} feasibility "
                f"{group.feasible} != exact {fresh is not None}"
            )
        elif fresh is not None:
            opt = fresh.objective_inverse_price
            true_gap = opt - group.objective
            if group.certified_gap < true_gap - REL_TOL * max(1.0, abs(opt)):
                out.append(
                    f"fleet: approx planner group "
                    f"{group.menu_id}@{group.capacity} certified gap "
                    f"{group.certified_gap!r} below true gap {true_gap!r}"
                )
    return out


# ----------------------------------------------------------------------
# Attribution: exact bucket decomposition of end-to-end job latency
# ----------------------------------------------------------------------
def attrib_violations(requests: Sequence, workers: int, depth: int) -> List[str]:
    """Audit critical-path attribution for one seeded service session.

    * **exactness** — for every terminal job the bucket sum equals the
      end-to-end duration **bit-for-bit** (``==`` on floats, never a
      tolerance), every bucket is non-negative, and jobs cancelled in
      the queue attribute nothing past ``queue_wait``
      (:func:`repro.obs.attrib.attribution_violations`);
    * **coverage** — one attribution per terminal job, in terminal
      order, each carrying the job's trace id;
    * **record stitching** — ``records()`` embeds the same attribution
      document in each job record and is idempotent (calling it twice
      yields byte-identical documents, labeled histograms included);
    * **replay determinism** — a second same-request session produces
      the byte-identical attribution list.
    """
    import json

    from ..obs.attrib import attribute_session, attribution_violations
    from ..service import ServiceConfig, run_session

    out: List[str] = []
    config = ServiceConfig(workers=workers, queue_depth=depth)
    first = run_session(requests, config)
    service = first.service

    out.extend(f"attrib: {v}" for v in attribution_violations(service))

    attribs = attribute_session(service)
    for a in attribs:
        job = service.jobs[a.job_id]
        if a.trace_id != job.trace_id:
            out.append(
                f"attrib: {a.job_id} trace id {a.trace_id!r} != job's "
                f"{job.trace_id!r}"
            )

    stamp = "2026-01-01T00:00:00Z"
    docs1 = [r.to_dict() for r in service.records(stamp)]
    docs2 = [r.to_dict() for r in service.records(stamp)]
    if json.dumps(docs1, sort_keys=True) != json.dumps(docs2, sort_keys=True):
        out.append("attrib: records() is not idempotent")
    by_job = {a.job_id: a for a in attribs}
    for doc in docs1[:-1]:
        job_id = doc["labels"].get("job_id")
        embedded = doc["labels"].get("attrib")
        expected = by_job[job_id].to_dict() if job_id in by_job else None
        if embedded != expected:
            out.append(
                f"attrib: record for {job_id} embeds {embedded!r}, "
                f"expected {expected!r}"
            )
    session_hists = docs1[-1]["metrics"].get("histograms", {})
    latency = session_hists.get("service.latency_ticks")
    if attribs and (
        latency is None or latency.get("count") != len(attribs)
    ):
        out.append(
            f"attrib: session latency histogram count "
            f"{None if latency is None else latency.get('count')} != "
            f"{len(attribs)} attributed jobs"
        )

    second = run_session(requests, config)
    replay = [a.to_dict() for a in attribute_session(second.service)]
    if json.dumps(replay, sort_keys=True) != json.dumps(
        [a.to_dict() for a in attribs], sort_keys=True
    ):
        out.append("attrib: attribution not byte-stable across replays")
    return out


# ----------------------------------------------------------------------
# SLO engine: burn/violation equivalence and byte-stable evaluation
# ----------------------------------------------------------------------
def slo_violations(requests: Sequence, workers: int, depth: int) -> List[str]:
    """Audit the SLO engine over one seeded service session's records.

    * **burn equivalence** — for every objective with data,
      ``burn > 1`` holds *iff* the objective failed (the two fields can
      never disagree), and no-data objectives pass vacuously;
    * **window partition** — with window size ``w`` the per-objective
      burn series has exactly ``ceil(records / w)`` entries, and the
      whole-set burn matches an independent recomputation from the
      report's own value/target fields;
    * **byte stability** — evaluating twice over the same records, and
      over a second same-seed session, yields byte-identical report
      JSON and render lines.
    """
    import json
    import math

    from ..obs.slo import evaluate_slo, parse_slo_spec
    from ..service import ServiceConfig, run_session

    out: List[str] = []
    config = ServiceConfig(workers=workers, queue_depth=depth)
    first = run_session(requests, config)
    stamp = "2026-01-01T00:00:00Z"
    records = first.service.records(stamp)

    spec = parse_slo_spec(
        {
            "schema": "repro-slo/1",
            "name": "fuzz-slo",
            "kind": "service",
            "objectives": [
                {
                    "name": "deadline-hit-rate",
                    "type": "ratio",
                    "label": "met_deadline",
                    "objective": 0.5,
                },
                {
                    "name": "p99-latency",
                    "type": "latency",
                    "metric": "service.latency_ticks",
                    "percentile": 99.0,
                    "threshold": 40.0,
                },
                {
                    "name": "cost-budget",
                    "type": "cost",
                    "metric": "executor.billed_cost",
                    "budget": 0.001,
                },
            ],
        }
    )
    window = max(1, workers)
    report = evaluate_slo(spec, records, window=window)

    for result in report.results:
        if result.no_data:
            if not result.passed or result.burn is not None:
                out.append(
                    f"slo: no-data objective {result.name} must pass "
                    f"vacuously with burn=None"
                )
            continue
        if result.burn is None or result.value is None:
            out.append(f"slo: objective {result.name} has data but no burn")
            continue
        if (result.burn > 1.0) == result.passed:
            out.append(
                f"slo: objective {result.name} burn {result.burn!r} "
                f"disagrees with passed={result.passed}"
            )
        if result.type == "ratio":
            expected = (1.0 - result.value) / (1.0 - result.target)
        else:
            expected = result.value / result.target
        if result.burn != expected:
            out.append(
                f"slo: objective {result.name} burn {result.burn!r} != "
                f"recomputed {expected!r}"
            )
        expected_windows = math.ceil(report.records / window)
        if len(result.windows) != expected_windows:
            out.append(
                f"slo: objective {result.name} has {len(result.windows)} "
                f"burn windows != ceil({report.records}/{window}) = "
                f"{expected_windows}"
            )
    if report.violated != any(not r.passed for r in report.results):
        out.append("slo: report verdict disagrees with objective verdicts")

    again = evaluate_slo(spec, records, window=window)
    if again.to_json() != report.to_json() or again.render() != report.render():
        out.append("slo: same-records evaluation is not byte-stable")

    second = run_session(requests, config)
    replay = evaluate_slo(
        spec, second.service.records(stamp), window=window
    )
    if replay.to_json() != report.to_json():
        out.append("slo: same-seed session evaluation is not byte-stable")
    return out
