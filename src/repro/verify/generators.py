"""Seeded random instance generators for the differential verifier.

Every generator takes a ``random.Random`` and produces one instance small
enough for its brute-force / exhaustive oracle to check in milliseconds:

* MCKP instances stay within 4 stages x 4 options so the exhaustive
  reference enumerates at most 256 selections,
* task graphs stay under ~25 tasks,
* AIGs stay within 6 primary inputs so exhaustive truth tables fit a
  single 64-bit simulation word.

Determinism contract: the same ``Random`` state always yields the same
instance, which is what makes fuzz failures replayable from a printed
seed (see :mod:`repro.verify.fuzz`).
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from ..cloud.executor import ExecutionPolicy, RetryPolicy
from ..cloud.faults import FaultProfile
from ..cloud.instance import InstanceFamily, VMConfig
from ..cloud.provisioner import DeploymentPlan
from ..core.optimize import ConfigOption, StageOptions
from ..eda.job import EDAStage
from ..netlist.aig import AIG, CONST_TRUE, lit_not
from ..parallel.taskgraph import TaskGraph

__all__ = [
    "random_mckp_instance",
    "random_task_graph",
    "random_aig",
    "random_recipe",
    "random_spot_params",
    "random_fault_profile",
    "random_execution_policy",
    "random_execution_case",
    "random_chaos_params",
    "random_service_case",
    "random_scenario_case",
    "random_fleet_case",
]

#: Synthesis pass pool used by :func:`random_recipe`.
RECIPE_POOL = ("balance", "rewrite", "refactor", "shuffle")


def random_mckp_instance(
    rng: random.Random,
) -> Tuple[List[StageOptions], int]:
    """Random small MCKP instance: (stage option lists, deadline seconds).

    Deadlines are drawn from slightly below the fastest-everywhere total to
    slightly above the slowest-everywhere total, so the fuzzer exercises
    infeasible, tight, and slack regimes.
    """
    num_stages = rng.randint(1, 4)
    stages: List[StageOptions] = []
    for i, stage in enumerate(EDAStage.ordered()[:num_stages]):
        options: List[ConfigOption] = []
        for j in range(rng.randint(1, 4)):
            vcpus = 2 ** rng.randint(0, 4)
            vm = VMConfig(
                name=f"fz{i}.{j}",
                family=rng.choice(list(InstanceFamily)),
                vcpus=vcpus,
                memory_gb=4.0 * vcpus,
                price_per_hour=round(rng.uniform(0.05, 3.0), 4),
            )
            runtime = rng.randint(1, 60)
            options.append(
                ConfigOption(
                    vm=vm, runtime_seconds=runtime, price=vm.cost(runtime)
                )
            )
        stages.append(StageOptions(stage=stage, options=options))
    fastest = sum(min(o.runtime_seconds for o in s.options) for s in stages)
    slowest = sum(max(o.runtime_seconds for o in s.options) for s in stages)
    deadline = rng.randint(max(1, fastest - 5), slowest + 10)
    return stages, deadline


def random_task_graph(rng: random.Random) -> Tuple[TaskGraph, int]:
    """Random DAG plus a worker count for the list-scheduler oracle.

    Mixes short and long tasks (two orders of magnitude apart) so the
    schedule stresses both the work-bound and the critical-path-bound side
    of the Graham inequality.
    """
    graph = TaskGraph(name="fuzz")
    num_tasks = rng.randint(1, 25)
    ids: List[int] = []
    for _ in range(num_tasks):
        ndeps = rng.randint(0, min(3, len(ids)))
        deps = rng.sample(ids, ndeps) if ndeps else []
        if rng.random() < 0.5:
            work = rng.uniform(0.01, 1.0)
        else:
            work = rng.uniform(1.0, 100.0)
        ids.append(graph.add_task(work, deps))
    workers = rng.randint(1, 8)
    return graph, workers


def random_aig(rng: random.Random) -> AIG:
    """Random small multi-output AIG (2-6 inputs, up to ~40 operators).

    Operators are drawn over earlier signals (including constants and
    complemented literals), so the graph exercises constant propagation,
    structural hashing, and shared fanout — all the paths the synthesis
    passes must preserve.
    """
    aig = AIG("fuzz")
    num_inputs = rng.randint(2, 6)
    signals: List[int] = [aig.add_input() for _ in range(num_inputs)]
    signals.append(CONST_TRUE)
    for _ in range(rng.randint(3, 40)):
        op = rng.choice(("and", "or", "xor", "mux", "maj"))
        pick = lambda: (
            lit_not(rng.choice(signals))
            if rng.random() < 0.3
            else rng.choice(signals)
        )
        if op == "and":
            signals.append(aig.add_and(pick(), pick()))
        elif op == "or":
            signals.append(aig.add_or(pick(), pick()))
        elif op == "xor":
            signals.append(aig.add_xor(pick(), pick()))
        elif op == "mux":
            signals.append(aig.add_mux(pick(), pick(), pick()))
        else:
            signals.append(aig.add_maj(pick(), pick(), pick()))
    for _ in range(rng.randint(1, 3)):
        out = rng.choice(signals)
        aig.add_output(lit_not(out) if rng.random() < 0.5 else out)
    return aig


def random_recipe(rng: random.Random) -> Tuple[Tuple[str, ...], int]:
    """Random synthesis (recipe, seed) pair for the equivalence oracle."""
    length = rng.randint(1, 3)
    recipe = tuple(rng.choice(RECIPE_POOL) for _ in range(length))
    return recipe, rng.randrange(1 << 30)


def random_spot_params(
    rng: random.Random,
) -> Tuple[float, float, Optional[float]]:
    """Random (runtime, interrupt rate per hour, checkpoint interval).

    Occasionally emits the boundary cases (zero runtime, zero rate, no
    checkpointing) the closed-form limit checks care about.
    """
    runtime = 0.0 if rng.random() < 0.05 else rng.uniform(1.0, 5000.0)
    rate = 0.0 if rng.random() < 0.1 else rng.uniform(0.005, 2.0)
    interval = None if rng.random() < 0.4 else rng.uniform(10.0, 2000.0)
    return runtime, rate, interval


def random_fault_profile(rng: random.Random) -> FaultProfile:
    """Random fault rates spanning calm pools to outright chaos.

    The fuzzed stage runtimes are tens of seconds, so preemption rates go
    up to hundreds per hour — that is what makes the K-preemption fallback
    and timeout paths fire inside a 60-second stage.
    """
    return FaultProfile(
        spot_interrupt_rate_per_hour=(
            0.0 if rng.random() < 0.25 else rng.uniform(10.0, 400.0)
        ),
        boot_failure_prob=0.0 if rng.random() < 0.4 else rng.uniform(0.0, 0.2),
        api_error_prob=0.0 if rng.random() < 0.4 else rng.uniform(0.0, 0.2),
        straggler_prob=0.0 if rng.random() < 0.5 else rng.uniform(0.0, 0.3),
        straggler_slowdown=rng.uniform(1.1, 2.5),
        checkpoint_interval_seconds=(
            None if rng.random() < 0.35 else rng.uniform(2.0, 40.0)
        ),
    )


def random_execution_policy(rng: random.Random, discount: float) -> ExecutionPolicy:
    """Random robustness policy (retry budgets, fallback cap, timeouts)."""
    return ExecutionPolicy(
        retry=RetryPolicy(
            max_retries=rng.randint(0, 4),
            backoff_base_seconds=rng.uniform(0.5, 5.0),
            backoff_multiplier=rng.uniform(1.0, 3.0),
            backoff_max_seconds=rng.uniform(10.0, 200.0),
            jitter_fraction=rng.uniform(0.0, 0.5),
        ),
        max_preemptions_per_stage=(
            None if rng.random() < 0.2 else rng.randint(1, 5)
        ),
        timeout_stretch=None if rng.random() < 0.3 else rng.uniform(1.5, 6.0),
        replan_on_fallback=rng.random() < 0.8,
        replan_excludes_spot=rng.random() < 0.8,
        spot_discount=discount,
    )


def random_execution_case(rng: random.Random):
    """One executor fuzz case: plan, deadline, profile, policy, seed, menus.

    Builds on :func:`random_mckp_instance`, mints a spot twin for every
    on-demand option (so fallback can find its catalog twin), then picks
    one option per stage — spot-biased, so the preemption machinery is
    exercised — as the plan under execution.
    """
    stages, _ = random_mckp_instance(rng)
    discount = rng.uniform(0.2, 0.5)
    menus: List[StageOptions] = []
    plan = DeploymentPlan(design="fuzz-exec")
    for so in stages:
        options = list(so.options)
        for opt in so.options:
            spot_vm = VMConfig(
                name=f"{opt.vm.name}.spot",
                family=opt.vm.family,
                vcpus=opt.vm.vcpus,
                memory_gb=opt.vm.memory_gb,
                price_per_hour=opt.vm.price_per_hour * discount,
                avx=opt.vm.avx,
            )
            options.append(
                ConfigOption(
                    vm=spot_vm,
                    runtime_seconds=opt.runtime_seconds,
                    price=spot_vm.cost(opt.runtime_seconds),
                )
            )
        menus.append(StageOptions(stage=so.stage, options=options))
        spot_half = options[len(options) // 2 :]
        pick = rng.choice(spot_half if rng.random() < 0.7 else options)
        plan.add(so.stage, pick.vm, pick.runtime_seconds)
    profile = random_fault_profile(rng)
    policy = random_execution_policy(rng, discount)
    seed = rng.randrange(1 << 30)
    deadline = float(
        rng.randint(
            max(1, int(plan.total_runtime * 0.8)),
            int(plan.total_runtime * 6) + 60,
        )
    )
    return plan, deadline, profile, policy, seed, menus


def random_chaos_params(
    rng: random.Random,
) -> Tuple[float, float, Optional[float]]:
    """Random (runtime, rate, checkpoint interval) for the convergence oracle.

    Bounded so ``lambda * segment <= 1.2``: above that the restart
    distribution's tail makes a 500-trial mean estimate too noisy for a
    5% tolerance; below it the standard error stays under ~2.5%.
    """
    interval = None if rng.random() < 0.3 else rng.uniform(30.0, 400.0)
    runtime = rng.uniform(100.0, 1200.0)
    segment = runtime if interval is None else min(interval, runtime)
    max_rate = 1.2 * 3600.0 / segment
    rate = rng.uniform(0.2, min(3.0, max_rate))
    return runtime, rate, interval


def random_service_case(rng: random.Random):
    """One service fuzz case: ``(requests, workers, queue_depth)``.

    Batches mix priorities, clients, and job kinds.  Most jobs are cheap
    ``sleep`` churn; at most two per batch run the real execute pipeline
    (sharing one flow seed so the characterization cache absorbs the
    cost).  Queue depth is sometimes smaller than the batch, so the
    admission-bound branch of the oracle is exercised too.
    """
    from ..service import JobRequest

    jobs = rng.randint(3, 8)
    workers = rng.randint(1, 3)
    depth = rng.randint(2, jobs + 2)
    heavy_budget = 2
    requests = []
    for _ in range(jobs):
        kind = rng.choice(("sleep", "sleep", "sleep", "execute", "plan"))
        if kind in ("execute", "plan"):
            if heavy_budget == 0:
                kind = "sleep"
            else:
                heavy_budget -= 1
        requests.append(
            JobRequest(
                kind=kind,
                design="ctrl",
                scale=0.15,
                seed=rng.randrange(1 << 16),
                flow_seed=7,
                priority=rng.randint(0, 2),
                client=rng.choice(("alice", "bob")),
                params={"steps": rng.randint(0, 3)} if kind == "sleep" else {},
            )
        )
    return requests, workers, depth


def random_fleet_case(rng: random.Random):
    """One fleet fuzz case: ``(menus, flows)`` for the fleet oracle.

    A handful of shared menus (reusing :func:`random_mckp_instance`, so
    each stays brute-force checkable) and a small flow population whose
    deadlines span the infeasible / tight / slack regimes of their menu
    — including duplicate ``(menu, deadline)`` pairs so the group-cache
    path is exercised, not just the solver.
    """
    from ..fleet import FlowSpec

    menus = {}
    spans = {}
    for m in range(rng.randint(1, 3)):
        menu_id = f"fm{m}"
        stages, _ = random_mckp_instance(rng)
        menus[menu_id] = stages
        fastest = sum(
            min(o.runtime_seconds for o in s.options) for s in stages
        )
        slowest = sum(
            max(o.runtime_seconds for o in s.options) for s in stages
        )
        spans[menu_id] = (max(1, fastest - 5), slowest + 10)
    menu_ids = sorted(menus)
    flows = []
    for i in range(rng.randint(2, 6)):
        menu_id = rng.choice(menu_ids)
        lo, hi = spans[menu_id]
        flows.append(
            FlowSpec(
                flow_id=f"ff{i}",
                menu_id=menu_id,
                deadline_seconds=float(rng.randint(lo, hi)),
            )
        )
    return menus, flows


def random_scenario_case(rng: random.Random):
    """One chaos-scenario fuzz case: ``(name, severity, seed)``.

    Severity 0 appears occasionally so the fuzz pool keeps hammering the
    zero-severity anchor; otherwise it spreads over (0, 1].
    """
    from ..chaos import scenario_names

    name = rng.choice(scenario_names())
    severity = rng.choice((0.0, 0.25, 0.5, 0.75, 1.0))
    seed = rng.randrange(1 << 16)
    return name, severity, seed
